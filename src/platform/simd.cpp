// SIMD multi-tile kernel engine — implementation.
//
// Three backends, one contract (bit-identical integer reductions):
//
//   * kAvx2  — hand-written intrinsics.  256-bit loads stream 8 B2SR-4
//     or 4 B2SR-8 tiles (one B2SR-16 tile, a quarter B2SR-32 tile) per
//     instruction; compare+movemask materializes Boolean row results,
//     and byte-lane popcount uses the Mula pshufb nibble-LUT.
//   * kSse42 — the portable SWAR/scalar bodies recompiled with
//     target("sse4.2,popcnt"): hardware popcnt plus whatever the
//     auto-vectorizer finds, without requiring -march at configure
//     time.
//   * kScalar — portable SWAR fallback: 64-bit words emulate the
//     vector lanes (per-byte popcount, byte-nonzero movemask), so even
//     ISA-less hosts keep most of the multi-tile batching.
//
// Every path is compiled in one translation unit behind gcc/clang
// function target attributes; active_backend() CPUID-probes the host
// once (__builtin_cpu_supports) and the dispatchers branch on the
// cached result, so a binary built without -march still runs AVX2
// inner loops on an AVX2 host and degrades gracefully elsewhere.
#include "platform/simd.hpp"

#include <bit>
#include <cstring>
#include <string>

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__)) && \
    !defined(BITGB_SIMD_DISABLE)
#define BITGB_SIMD_X86 1
#include <immintrin.h>
#else
#define BITGB_SIMD_X86 0
#endif

namespace bitgb {

KernelVariant preferred_variant(HotKernel k, int dim) {
#if defined(__AVX2__)
  // The scalar bodies of this translation-unit's callers were compiled
  // under a wide ISA (-march=...), so the compiler auto-vectorizes
  // them; the committed BENCH_kernels.json shows them beating the
  // hand-written engine in these cells (dense per-tile reductions where
  // the compiler emits full-width popcount code).  Everything else
  // still prefers the engine.
  switch (k) {
    case HotKernel::kBmvBinBinBin:
    case HotKernel::kBmvBinBinBinMasked:
      return dim >= 32 ? KernelVariant::kScalar : KernelVariant::kSimd;
    case HotKernel::kBmvBinBinFull:
    case HotKernel::kBmvBinBinFullMasked:
      // The counting per-tile reduction auto-vectorizes outright (the
      // escape-free serial loops popcount at full width); the baseline
      // records the scalar side winning at every dim.
      return KernelVariant::kScalar;
    case HotKernel::kBmmBinBinSum:
      // Near-ties throughout; dims 8/32 record the auto-vectorized
      // scalar ahead, dims 4/16 the engine.
      return (dim == 8 || dim == 32) ? KernelVariant::kScalar
                                     : KernelVariant::kSimd;
    case HotKernel::kBmmBinBinSumMasked:
    case HotKernel::kFrontierPull:
    case HotKernel::kFrontierPullMasked:
    case HotKernel::kPackScatter:
    case HotKernel::kSpgemmAccum:
      return KernelVariant::kSimd;
  }
  return KernelVariant::kSimd;
#else
  // Default build: only the CPUID-dispatched engine paths emit vector
  // code at all, and the engine wins every recorded cell.
  (void)k;
  (void)dim;
  return KernelVariant::kSimd;
#endif
}

KernelVariant resolve_kernel_variant(KernelVariant requested) {
  // No kernel context: kAuto keeps the historical blanket-kSimd default.
  return requested == KernelVariant::kAuto ? KernelVariant::kSimd : requested;
}

KernelVariant resolve_kernel_variant(KernelVariant requested, HotKernel k,
                                     int dim) {
  if (requested != KernelVariant::kAuto) return requested;
  return preferred_variant(k, dim);
}

const char* kernel_variant_name(KernelVariant v) {
  switch (v) {
    case KernelVariant::kAuto: return "auto";
    case KernelVariant::kScalar: return "scalar";
    case KernelVariant::kSimd: return "simd";
  }
  return "?";
}

bool parse_kernel_variant(const char* s, KernelVariant& out) {
  const std::string v(s == nullptr ? "" : s);
  if (v == "scalar") {
    out = KernelVariant::kScalar;
  } else if (v == "simd") {
    out = KernelVariant::kSimd;
  } else if (v == "auto") {
    out = KernelVariant::kAuto;
  } else {
    return false;
  }
  return true;
}

namespace simd {

namespace {

Backend detect_backend() {
#if BITGB_SIMD_X86
  if (__builtin_cpu_supports("avx2")) return Backend::kAvx2;
  if (__builtin_cpu_supports("sse4.2") && __builtin_cpu_supports("popcnt")) {
    return Backend::kSse42;
  }
#endif
  return Backend::kScalar;
}

// =====================================================================
// SWAR primitives — 64-bit words as poor-man's vector lanes.
// =====================================================================

/// Per-byte popcount of a 64-bit word (each byte counts its own bits).
[[gnu::always_inline]] inline std::uint64_t swar_popcnt_bytes(
    std::uint64_t v) {
  v = v - ((v >> 1) & 0x5555555555555555ull);
  v = (v & 0x3333333333333333ull) + ((v >> 2) & 0x3333333333333333ull);
  return (v + (v >> 4)) & 0x0F0F0F0F0F0F0F0Full;
}

/// Movemask: bit r of the result = (byte r of v != 0).
[[gnu::always_inline]] inline std::uint32_t swar_bytes_nonzero_mask(
    std::uint64_t v) {
  const std::uint64_t hi =
      (v | ((v & 0x7F7F7F7F7F7F7F7Full) + 0x7F7F7F7F7F7F7F7Full)) &
      0x8080808080808080ull;
  return static_cast<std::uint32_t>(((hi >> 7) * 0x0102040810204080ull) >> 56);
}

/// Expand bit c of `bits` (c < 8) into byte c = 0xFF / 0x00.
[[gnu::always_inline]] inline std::uint64_t swar_bits_to_byte_mask(
    unsigned bits) {
  const std::uint64_t spread =
      (bits * 0x0101010101010101ull) & 0x8040201008040201ull;
  const std::uint64_t hi =
      (spread | ((spread & 0x7F7F7F7F7F7F7F7Full) + 0x7F7F7F7F7F7F7F7Full)) &
      0x8080808080808080ull;
  return (hi - (hi >> 7)) | hi;  // 0x80 -> 0xFF per selected byte
}

/// Load one B2SR-8 tile (8 bytes) as a word, byte r = bit-row r.
[[gnu::always_inline]] inline std::uint64_t load_tile8(
    const std::uint8_t* p) {
  std::uint64_t v;
  std::memcpy(&v, p, sizeof v);
  return v;
}

/// Load one B2SR-4 tile (4 bytes) as a word, byte r = bit-row r.
[[gnu::always_inline]] inline std::uint32_t load_tile4(
    const std::uint8_t* p) {
  std::uint32_t v;
  std::memcpy(&v, p, sizeof v);
  return v;
}

// =====================================================================
// Portable bodies.  These are the kScalar backend and, recompiled with
// target("sse4.2,popcnt"), the kSse42 backend; marked always_inline so
// the SSE wrappers regenerate them under the wider ISA.
// =====================================================================

template <int Dim>
[[gnu::always_inline]] inline typename TileTraits<Dim>::word_t bbb_row_or_body(
    const typename TileTraits<Dim>::word_t* tiles, const vidx_t* colind,
    const typename TileTraits<Dim>::word_t* xwords, vidx_t lo, vidx_t hi) {
  using word_t = typename TileTraits<Dim>::word_t;
  word_t out = 0;
  if constexpr (Dim == 8) {
    for (vidx_t t = lo; t < hi; ++t) {
      const std::uint64_t xw = xwords[static_cast<std::size_t>(colind[t])];
      if (xw == 0) continue;
      const std::uint64_t v = load_tile8(tiles + static_cast<std::size_t>(t) * 8) &
                              (xw * 0x0101010101010101ull);
      out = static_cast<word_t>(out | swar_bytes_nonzero_mask(v));
    }
  } else if constexpr (Dim == 4) {
    for (vidx_t t = lo; t < hi; ++t) {
      const std::uint32_t xw = xwords[static_cast<std::size_t>(colind[t])];
      if (xw == 0) continue;
      const std::uint32_t v =
          load_tile4(tiles + static_cast<std::size_t>(t) * 4) &
          (xw * 0x01010101u);
      const std::uint32_t hi4 =
          (v | ((v & 0x7F7F7F7Fu) + 0x7F7F7F7Fu)) & 0x80808080u;
      out = static_cast<word_t>(out | (((hi4 >> 7) * 0x01020408u) >> 24));
    }
  } else {
    for (vidx_t t = lo; t < hi; ++t) {
      const word_t xw = xwords[static_cast<std::size_t>(colind[t])];
      if (xw == 0) continue;
      const word_t* w = tiles + static_cast<std::size_t>(t) * Dim;
      for (int r = 0; r < Dim; ++r) {
        if ((w[r] & xw) != 0) out = set_bit(out, r);
      }
    }
  }
  return out;
}

template <int Dim>
[[gnu::always_inline]] inline void bbf_row_accum_body(
    const typename TileTraits<Dim>::word_t* tiles, const vidx_t* colind,
    const typename TileTraits<Dim>::word_t* xwords, vidx_t lo, vidx_t hi,
    std::int32_t* acc) {
  using word_t = typename TileTraits<Dim>::word_t;
  if constexpr (Dim == 8 || Dim == 4) {
    // Byte-lane accumulation with periodic flush: per tile each byte
    // gains at most Dim counts, so 255 / 8 = 31 tiles fit for Dim == 8
    // (more for Dim == 4; 31 is safe for both).
    std::uint64_t byte_acc = 0;
    int pending = 0;
    const auto flush = [&] {
      for (int r = 0; r < 8; ++r) {
        const auto c = static_cast<std::int32_t>((byte_acc >> (8 * r)) & 0xFF);
        if constexpr (Dim == 4) {
          acc[r & 3] += c;
        } else {
          acc[r] += c;
        }
      }
      byte_acc = 0;
      pending = 0;
    };
    vidx_t t = lo;
    if constexpr (Dim == 4) {
      for (; t + 2 <= hi; t += 2) {
        const std::uint64_t x0 = xwords[static_cast<std::size_t>(colind[t])];
        const std::uint64_t x1 =
            xwords[static_cast<std::size_t>(colind[t + 1])];
        if ((x0 | x1) == 0) continue;
        std::uint64_t pair;
        std::memcpy(&pair, tiles + static_cast<std::size_t>(t) * 4,
                    sizeof pair);
        const std::uint64_t xrep =
            x0 * 0x0000000001010101ull | (x1 * 0x0101010100000000ull);
        byte_acc += swar_popcnt_bytes(pair & xrep);
        if (++pending == 31) flush();
      }
      for (; t < hi; ++t) {
        const std::uint32_t xw = xwords[static_cast<std::size_t>(colind[t])];
        if (xw == 0) continue;
        byte_acc += swar_popcnt_bytes(
            static_cast<std::uint64_t>(
                load_tile4(tiles + static_cast<std::size_t>(t) * 4)) &
            (static_cast<std::uint64_t>(xw) * 0x01010101ull));
        if (++pending == 31) flush();
      }
    } else {
      for (; t < hi; ++t) {
        const std::uint64_t xw = xwords[static_cast<std::size_t>(colind[t])];
        if (xw == 0) continue;
        byte_acc += swar_popcnt_bytes(
            load_tile8(tiles + static_cast<std::size_t>(t) * 8) &
            (xw * 0x0101010101010101ull));
        if (++pending == 31) flush();
      }
    }
    if (pending != 0) flush();
  } else {
    for (vidx_t t = lo; t < hi; ++t) {
      const word_t xw = xwords[static_cast<std::size_t>(colind[t])];
      if (xw == 0) continue;
      const word_t* w = tiles + static_cast<std::size_t>(t) * Dim;
      for (int r = 0; r < Dim; ++r) {
        acc[r] += popcount(static_cast<word_t>(w[r] & xw));
      }
    }
  }
}

template <int Dim>
[[gnu::always_inline]] inline void rows_pop_accum_body(
    const typename TileTraits<Dim>::word_t* tiles, vidx_t lo, vidx_t hi,
    std::int32_t* pop) {
  using word_t = typename TileTraits<Dim>::word_t;
  if constexpr (Dim == 8 || Dim == 4) {
    std::uint64_t byte_acc = 0;
    int pending = 0;
    const auto flush = [&] {
      for (int r = 0; r < 8; ++r) {
        const auto c = static_cast<std::int32_t>((byte_acc >> (8 * r)) & 0xFF);
        if constexpr (Dim == 4) {
          pop[r & 3] += c;
        } else {
          pop[r] += c;
        }
      }
      byte_acc = 0;
      pending = 0;
    };
    vidx_t t = lo;
    if constexpr (Dim == 4) {
      for (; t + 2 <= hi; t += 2) {
        std::uint64_t pair;
        std::memcpy(&pair, tiles + static_cast<std::size_t>(t) * 4,
                    sizeof pair);
        byte_acc += swar_popcnt_bytes(pair);
        if (++pending == 31) flush();
      }
      for (; t < hi; ++t) {
        byte_acc += swar_popcnt_bytes(static_cast<std::uint64_t>(
            load_tile4(tiles + static_cast<std::size_t>(t) * 4)));
        if (++pending == 31) flush();
      }
    } else {
      for (; t < hi; ++t) {
        byte_acc += swar_popcnt_bytes(
            load_tile8(tiles + static_cast<std::size_t>(t) * 8));
        if (++pending == 31) flush();
      }
    }
    if (pending != 0) flush();
  } else {
    for (vidx_t t = lo; t < hi; ++t) {
      const word_t* w = tiles + static_cast<std::size_t>(t) * Dim;
      for (int r = 0; r < Dim; ++r) pop[r] += popcount(w[r]);
    }
  }
}

template <int Dim>
[[gnu::always_inline]] inline std::int64_t masked_pair_dot_body(
    const typename TileTraits<Dim>::word_t* awords,
    const typename TileTraits<Dim>::word_t* bwords,
    const typename TileTraits<Dim>::word_t* mwords) {
  using word_t = typename TileTraits<Dim>::word_t;
  std::int64_t sum = 0;
  if constexpr (Dim == 8 || Dim == 4) {
    // Whole-row dot in one word: broadcast A's bit-row over the byte
    // lanes, AND with the B tile (byte c = B bit-row c), knock out the
    // unmasked lanes, popcount once.
    std::uint64_t btile;
    if constexpr (Dim == 8) {
      btile = load_tile8(bwords);
    } else {
      btile = static_cast<std::uint64_t>(load_tile4(bwords));
    }
    constexpr std::uint64_t ones =
        Dim == 8 ? 0x0101010101010101ull : 0x0000000001010101ull;
    for (int r = 0; r < Dim; ++r) {
      const word_t mrow = mwords[r];
      if (mrow == 0) continue;
      const word_t arow = awords[r];
      if (arow == 0) continue;
      const std::uint64_t sel = swar_bits_to_byte_mask(mrow);
      sum += popcount((static_cast<std::uint64_t>(arow) * ones) & btile & sel);
    }
  } else {
    for (int r = 0; r < Dim; ++r) {
      const word_t mrow = mwords[r];
      if (mrow == 0) continue;
      const word_t arow = awords[r];
      if (arow == 0) continue;
      for_each_set_bit(mrow, [&](int c) {
        sum += popcount(static_cast<word_t>(arow & bwords[c]));
      });
    }
  }
  return sum;
}

template <int Dim>
[[gnu::always_inline]] inline void frontier_row_accum_body(
    const typename TileTraits<Dim>::word_t* tiles, const vidx_t* colind,
    vidx_t lo, vidx_t hi, const std::uint64_t* frows, std::size_t /*nfrows*/,
    std::uint64_t* acc) {
  for (vidx_t t = lo; t < hi; ++t) {
    const auto base = static_cast<std::size_t>(colind[t]) *
                      static_cast<std::size_t>(Dim);
    const auto* w = tiles + static_cast<std::size_t>(t) * Dim;
    for (int r = 0; r < Dim; ++r) {
      if (w[r] == 0) continue;
      for_each_set_bit(w[r], [&](int j) {
        acc[r] |= frows[base + static_cast<std::size_t>(j)];
      });
    }
  }
}

template <int Dim>
[[gnu::always_inline]] inline void spgemm_tile_accum_body(
    const typename TileTraits<Dim>::word_t* awords,
    const typename TileTraits<Dim>::word_t* bwords,
    typename TileTraits<Dim>::word_t* cacc) {
  using word_t = typename TileTraits<Dim>::word_t;
  if constexpr (Dim == 8) {
    // Column-broadcast SWAR: for each column t of A present anywhere in
    // the tile, expand bit t of every A row into its byte lane
    // (m * 0xFF; the lanes are 0/1 so the multiply cannot carry) and OR
    // in B's bit-row t broadcast across the lanes.
    std::uint64_t at, bt, ct;
    std::memcpy(&at, awords, sizeof at);
    std::memcpy(&bt, bwords, sizeof bt);
    std::memcpy(&ct, cacc, sizeof ct);
    std::uint64_t fold = at | (at >> 32);
    fold |= fold >> 16;
    fold |= fold >> 8;
    auto colmask = static_cast<std::uint32_t>(fold & 0xFF);
    while (colmask != 0) {
      const int t = std::countr_zero(colmask);
      colmask &= colmask - 1;
      const std::uint64_t m = (at >> t) & 0x0101010101010101ull;
      ct |= (m * 0xFF) & (((bt >> (8 * t)) & 0xFF) * 0x0101010101010101ull);
    }
    std::memcpy(cacc, &ct, sizeof ct);
  } else if constexpr (Dim == 4) {
    std::uint32_t at, bt, ct;
    std::memcpy(&at, awords, sizeof at);
    std::memcpy(&bt, bwords, sizeof bt);
    std::memcpy(&ct, cacc, sizeof ct);
    std::uint32_t fold = at | (at >> 16);
    fold |= fold >> 8;
    std::uint32_t colmask = fold & 0x0F;
    while (colmask != 0) {
      const int t = std::countr_zero(colmask);
      colmask &= colmask - 1;
      const std::uint32_t m = (at >> t) & 0x01010101u;
      ct |= (m * 0xFFu) & (((bt >> (8 * t)) & 0xFFu) * 0x01010101u);
    }
    std::memcpy(cacc, &ct, sizeof ct);
  } else if constexpr (Dim == 16) {
    // Same broadcast over four 64-bit words of 16-bit lanes (four A
    // rows per word), gated on the tile-wide column mask.
    std::uint64_t aw[4], cw[4];
    std::memcpy(aw, awords, sizeof aw);
    std::memcpy(cw, cacc, sizeof cw);
    std::uint64_t fold = aw[0] | aw[1] | aw[2] | aw[3];
    fold |= fold >> 32;
    fold |= fold >> 16;
    auto colmask = static_cast<std::uint32_t>(fold & 0xFFFF);
    while (colmask != 0) {
      const int t = std::countr_zero(colmask);
      colmask &= colmask - 1;
      const std::uint64_t bcast =
          static_cast<std::uint64_t>(bwords[t]) * 0x0001000100010001ull;
      for (int w = 0; w < 4; ++w) {
        const std::uint64_t m = (aw[w] >> t) & 0x0001000100010001ull;
        cw[w] |= (m * 0xFFFF) & bcast;
      }
    }
    std::memcpy(cacc, cw, sizeof cw);
  } else {
    for (int r = 0; r < Dim; ++r) {
      const word_t arow = awords[r];
      if (arow == 0) continue;
      word_t crow = cacc[r];
      for_each_set_bit(arow, [&](int t) {
        crow = static_cast<word_t>(crow | bwords[static_cast<std::size_t>(t)]);
      });
      cacc[r] = crow;
    }
  }
}

template <int Dim>
[[gnu::always_inline]] inline std::size_t pack_scatter_run_body(
    const vidx_t* cols, std::size_t i, std::size_t n, vidx_t base,
    typename TileTraits<Dim>::word_t& w) {
  using word_t = typename TileTraits<Dim>::word_t;
  const vidx_t limit = base + Dim;
  word_t acc = w;
  while (i < n && cols[i] < limit) {
    acc = static_cast<word_t>(acc | (word_t{1} << (cols[i] - base)));
    ++i;
  }
  w = acc;
  return i;
}

// =====================================================================
// Backend wrappers.
// =====================================================================

template <int Dim>
typename TileTraits<Dim>::word_t bbb_row_or_scalar(
    const typename TileTraits<Dim>::word_t* tiles, const vidx_t* colind,
    const typename TileTraits<Dim>::word_t* xwords, vidx_t lo, vidx_t hi) {
  return bbb_row_or_body<Dim>(tiles, colind, xwords, lo, hi);
}

template <int Dim>
void bbf_row_accum_scalar(const typename TileTraits<Dim>::word_t* tiles,
                          const vidx_t* colind,
                          const typename TileTraits<Dim>::word_t* xwords,
                          vidx_t lo, vidx_t hi, std::int32_t* acc) {
  bbf_row_accum_body<Dim>(tiles, colind, xwords, lo, hi, acc);
}

template <int Dim>
void rows_pop_accum_scalar(const typename TileTraits<Dim>::word_t* tiles,
                           vidx_t lo, vidx_t hi, std::int32_t* pop) {
  rows_pop_accum_body<Dim>(tiles, lo, hi, pop);
}

template <int Dim>
std::int64_t masked_pair_dot_scalar(
    const typename TileTraits<Dim>::word_t* awords,
    const typename TileTraits<Dim>::word_t* bwords,
    const typename TileTraits<Dim>::word_t* mwords) {
  return masked_pair_dot_body<Dim>(awords, bwords, mwords);
}

template <int Dim>
void frontier_row_accum_scalar(const typename TileTraits<Dim>::word_t* tiles,
                               const vidx_t* colind, vidx_t lo, vidx_t hi,
                               const std::uint64_t* frows, std::size_t nfrows,
                               std::uint64_t* acc) {
  frontier_row_accum_body<Dim>(tiles, colind, lo, hi, frows, nfrows, acc);
}

template <int Dim>
std::size_t pack_scatter_run_scalar(const vidx_t* cols, std::size_t i,
                                    std::size_t n, vidx_t base,
                                    typename TileTraits<Dim>::word_t& w) {
  return pack_scatter_run_body<Dim>(cols, i, n, base, w);
}

template <int Dim>
void spgemm_tile_accum_scalar(const typename TileTraits<Dim>::word_t* awords,
                              const typename TileTraits<Dim>::word_t* bwords,
                              typename TileTraits<Dim>::word_t* cacc) {
  spgemm_tile_accum_body<Dim>(awords, bwords, cacc);
}

#if BITGB_SIMD_X86

#define BITGB_TGT_SSE __attribute__((target("sse4.2,popcnt")))
#define BITGB_TGT_AVX2 __attribute__((target("avx2,popcnt")))

// --- SSE4.2: the portable bodies under the wider ISA (hardware popcnt
// plus auto-vectorization), regenerated here by always_inline. ---

template <int Dim>
BITGB_TGT_SSE typename TileTraits<Dim>::word_t bbb_row_or_sse(
    const typename TileTraits<Dim>::word_t* tiles, const vidx_t* colind,
    const typename TileTraits<Dim>::word_t* xwords, vidx_t lo, vidx_t hi) {
  return bbb_row_or_body<Dim>(tiles, colind, xwords, lo, hi);
}

template <int Dim>
BITGB_TGT_SSE void bbf_row_accum_sse(
    const typename TileTraits<Dim>::word_t* tiles, const vidx_t* colind,
    const typename TileTraits<Dim>::word_t* xwords, vidx_t lo, vidx_t hi,
    std::int32_t* acc) {
  bbf_row_accum_body<Dim>(tiles, colind, xwords, lo, hi, acc);
}

template <int Dim>
BITGB_TGT_SSE void rows_pop_accum_sse(
    const typename TileTraits<Dim>::word_t* tiles, vidx_t lo, vidx_t hi,
    std::int32_t* pop) {
  rows_pop_accum_body<Dim>(tiles, lo, hi, pop);
}

template <int Dim>
BITGB_TGT_SSE std::int64_t masked_pair_dot_sse(
    const typename TileTraits<Dim>::word_t* awords,
    const typename TileTraits<Dim>::word_t* bwords,
    const typename TileTraits<Dim>::word_t* mwords) {
  return masked_pair_dot_body<Dim>(awords, bwords, mwords);
}

template <int Dim>
BITGB_TGT_SSE void frontier_row_accum_sse(
    const typename TileTraits<Dim>::word_t* tiles, const vidx_t* colind,
    vidx_t lo, vidx_t hi, const std::uint64_t* frows, std::size_t nfrows,
    std::uint64_t* acc) {
  frontier_row_accum_body<Dim>(tiles, colind, lo, hi, frows, nfrows, acc);
}

template <int Dim>
BITGB_TGT_SSE std::size_t pack_scatter_run_sse(
    const vidx_t* cols, std::size_t i, std::size_t n, vidx_t base,
    typename TileTraits<Dim>::word_t& w) {
  return pack_scatter_run_body<Dim>(cols, i, n, base, w);
}

template <int Dim>
BITGB_TGT_SSE void spgemm_tile_accum_sse(
    const typename TileTraits<Dim>::word_t* awords,
    const typename TileTraits<Dim>::word_t* bwords,
    typename TileTraits<Dim>::word_t* cacc) {
  spgemm_tile_accum_body<Dim>(awords, bwords, cacc);
}

// --- AVX2: hand-written intrinsics. ---

/// UB-free 32-byte vector load/store.  The classic
/// `loadu256(p)` idiom puns
/// the pointee type; a fixed-size memcpy through a local __m256i says
/// the same thing without the aliasing violation, and every supported
/// compiler folds it to the identical single vmovdqu — BENCH_kernels
/// spot-checked flat across the swap.
BITGB_TGT_AVX2 inline __m256i loadu256(const void* p) {
  __m256i v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

BITGB_TGT_AVX2 inline void store256(void* p, __m256i v) {
  std::memcpy(p, &v, sizeof(v));
}

/// Mula byte-lane popcount (pshufb nibble LUT).
BITGB_TGT_AVX2 inline __m256i avx2_popcnt_epi8(__m256i v) {
  const __m256i lut = _mm256_setr_epi8(
      0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4,
      0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4);
  const __m256i low = _mm256_set1_epi8(0x0F);
  const __m256i lo = _mm256_and_si256(v, low);
  const __m256i hi = _mm256_and_si256(_mm256_srli_epi16(v, 4), low);
  return _mm256_add_epi8(_mm256_shuffle_epi8(lut, lo),
                         _mm256_shuffle_epi8(lut, hi));
}

/// Per-32-bit-lane popcount: byte counts folded pairwise twice.
BITGB_TGT_AVX2 inline __m256i avx2_popcnt_epi32(__m256i v) {
  const __m256i c8 = avx2_popcnt_epi8(v);
  const __m256i c16 = _mm256_maddubs_epi16(c8, _mm256_set1_epi8(1));
  return _mm256_madd_epi16(c16, _mm256_set1_epi16(1));
}

/// Horizontal sum of 8 32-bit lanes.
BITGB_TGT_AVX2 inline std::int32_t avx2_hsum_epi32(__m256i v) {
  __m128i s = _mm_add_epi32(_mm256_castsi256_si128(v),
                            _mm256_extracti128_si256(v, 1));
  s = _mm_add_epi32(s, _mm_shuffle_epi32(s, _MM_SHUFFLE(1, 0, 3, 2)));
  s = _mm_add_epi32(s, _mm_shuffle_epi32(s, _MM_SHUFFLE(2, 3, 0, 1)));
  return _mm_cvtsi128_si32(s);
}

/// Horizontal OR of 4 64-bit lanes.
BITGB_TGT_AVX2 inline std::uint64_t avx2_hor_epi64(__m256i v) {
  __m128i o = _mm_or_si128(_mm256_castsi256_si128(v),
                           _mm256_extracti128_si256(v, 1));
  o = _mm_or_si128(o, _mm_unpackhi_epi64(o, o));
  return static_cast<std::uint64_t>(_mm_cvtsi128_si64(o));
}

template <int Dim>
BITGB_TGT_AVX2 typename TileTraits<Dim>::word_t bbb_row_or_avx2(
    const typename TileTraits<Dim>::word_t* tiles, const vidx_t* colind,
    const typename TileTraits<Dim>::word_t* xwords, vidx_t lo, vidx_t hi) {
  using word_t = typename TileTraits<Dim>::word_t;
  const __m256i zero = _mm256_setzero_si256();
  if constexpr (Dim == 8) {
    // 4 tiles (32 bytes) per iteration; each tile's 8 rows land in one
    // byte group of the movemask, OR-folded into the shared out word.
    std::uint32_t out4 = 0;
    vidx_t t = lo;
    for (; t + 4 <= hi; t += 4) {
      const std::uint64_t b0 = xwords[static_cast<std::size_t>(colind[t])];
      const std::uint64_t b1 = xwords[static_cast<std::size_t>(colind[t + 1])];
      const std::uint64_t b2 = xwords[static_cast<std::size_t>(colind[t + 2])];
      const std::uint64_t b3 = xwords[static_cast<std::size_t>(colind[t + 3])];
      if ((b0 | b1 | b2 | b3) == 0) continue;
      const __m256i xv = _mm256_set_epi64x(
          static_cast<long long>(b3 * 0x0101010101010101ull),
          static_cast<long long>(b2 * 0x0101010101010101ull),
          static_cast<long long>(b1 * 0x0101010101010101ull),
          static_cast<long long>(b0 * 0x0101010101010101ull));
      const __m256i tv = loadu256(
          tiles + static_cast<std::size_t>(t) * 8);
      const __m256i z = _mm256_cmpeq_epi8(_mm256_and_si256(tv, xv), zero);
      out4 |= ~static_cast<std::uint32_t>(_mm256_movemask_epi8(z));
    }
    out4 |= out4 >> 16;
    out4 |= out4 >> 8;
    auto out = static_cast<word_t>(out4 & 0xFF);
    for (; t < hi; ++t) {
      const std::uint64_t xw = xwords[static_cast<std::size_t>(colind[t])];
      if (xw == 0) continue;
      const std::uint64_t v =
          load_tile8(tiles + static_cast<std::size_t>(t) * 8) &
          (xw * 0x0101010101010101ull);
      out = static_cast<word_t>(out | swar_bytes_nonzero_mask(v));
    }
    return out;
  } else if constexpr (Dim == 4) {
    // 8 tiles (32 bytes) per iteration, 4 movemask bits per tile.
    std::uint32_t out8 = 0;
    vidx_t t = lo;
    for (; t + 8 <= hi; t += 8) {
      std::uint32_t d[8];
      std::uint32_t any = 0;
      for (int i = 0; i < 8; ++i) {
        const std::uint32_t b = xwords[static_cast<std::size_t>(colind[t + i])];
        any |= b;
        d[i] = b * 0x01010101u;
      }
      if (any == 0) continue;
      const __m256i xv = _mm256_setr_epi32(
          static_cast<int>(d[0]), static_cast<int>(d[1]),
          static_cast<int>(d[2]), static_cast<int>(d[3]),
          static_cast<int>(d[4]), static_cast<int>(d[5]),
          static_cast<int>(d[6]), static_cast<int>(d[7]));
      const __m256i tv = loadu256(
          tiles + static_cast<std::size_t>(t) * 4);
      const __m256i z = _mm256_cmpeq_epi8(_mm256_and_si256(tv, xv), zero);
      out8 |= ~static_cast<std::uint32_t>(_mm256_movemask_epi8(z));
    }
    out8 |= out8 >> 16;
    out8 |= out8 >> 8;
    out8 |= out8 >> 4;
    auto out = static_cast<word_t>(out8 & 0xF);
    for (; t < hi; ++t) {
      const std::uint32_t xw = xwords[static_cast<std::size_t>(colind[t])];
      if (xw == 0) continue;
      const std::uint32_t v =
          load_tile4(tiles + static_cast<std::size_t>(t) * 4) &
          (xw * 0x01010101u);
      const std::uint32_t hi4 =
          (v | ((v & 0x7F7F7F7Fu) + 0x7F7F7F7Fu)) & 0x80808080u;
      out = static_cast<word_t>(out | (((hi4 >> 7) * 0x01020408u) >> 24));
    }
    return out;
  } else if constexpr (Dim == 16) {
    // One tile (16 uint16 rows) per 256-bit load.
    word_t out = 0;
    for (vidx_t t = lo; t < hi; ++t) {
      const word_t xw = xwords[static_cast<std::size_t>(colind[t])];
      if (xw == 0) continue;
      const __m256i xv = _mm256_set1_epi16(static_cast<short>(xw));
      const __m256i tv = loadu256(
          tiles + static_cast<std::size_t>(t) * 16);
      const __m256i z = _mm256_cmpeq_epi16(_mm256_and_si256(tv, xv), zero);
      const __m128i packed = _mm_packs_epi16(
          _mm256_castsi256_si128(z), _mm256_extracti128_si256(z, 1));
      out = static_cast<word_t>(
          out | static_cast<word_t>(~_mm_movemask_epi8(packed)));
    }
    return out;
  } else {
    // One tile = 32 uint32 rows = four 256-bit loads, 8 mask bits each.
    word_t out = 0;
    for (vidx_t t = lo; t < hi; ++t) {
      const word_t xw = xwords[static_cast<std::size_t>(colind[t])];
      if (xw == 0) continue;
      const __m256i xv = _mm256_set1_epi32(static_cast<int>(xw));
      const auto* base = tiles + static_cast<std::size_t>(t) * 32;
      std::uint32_t m = 0;
      for (int k = 0; k < 4; ++k) {
        const __m256i tv = loadu256(base + 8 * k);
        const __m256i z = _mm256_cmpeq_epi32(_mm256_and_si256(tv, xv), zero);
        const auto zk = static_cast<std::uint32_t>(
            _mm256_movemask_ps(_mm256_castsi256_ps(z)));
        m |= (~zk & 0xFFu) << (8 * k);
      }
      out |= m;
    }
    return out;
  }
}

template <int Dim>
BITGB_TGT_AVX2 void bbf_row_accum_avx2(
    const typename TileTraits<Dim>::word_t* tiles, const vidx_t* colind,
    const typename TileTraits<Dim>::word_t* xwords, vidx_t lo, vidx_t hi,
    std::int32_t* acc) {
  using word_t = typename TileTraits<Dim>::word_t;
  if constexpr (Dim == 8) {
    __m256i accv = _mm256_setzero_si256();  // 8 x int32, one per bit-row
    vidx_t t = lo;
    for (; t + 4 <= hi; t += 4) {
      const std::uint64_t b0 = xwords[static_cast<std::size_t>(colind[t])];
      const std::uint64_t b1 = xwords[static_cast<std::size_t>(colind[t + 1])];
      const std::uint64_t b2 = xwords[static_cast<std::size_t>(colind[t + 2])];
      const std::uint64_t b3 = xwords[static_cast<std::size_t>(colind[t + 3])];
      if ((b0 | b1 | b2 | b3) == 0) continue;
      const __m256i xv = _mm256_set_epi64x(
          static_cast<long long>(b3 * 0x0101010101010101ull),
          static_cast<long long>(b2 * 0x0101010101010101ull),
          static_cast<long long>(b1 * 0x0101010101010101ull),
          static_cast<long long>(b0 * 0x0101010101010101ull));
      const __m256i tv = loadu256(
          tiles + static_cast<std::size_t>(t) * 8);
      const __m256i c = avx2_popcnt_epi8(_mm256_and_si256(tv, xv));
      const __m128i c_lo = _mm256_castsi256_si128(c);
      const __m128i c_hi = _mm256_extracti128_si256(c, 1);
      accv = _mm256_add_epi32(accv, _mm256_cvtepu8_epi32(c_lo));
      accv = _mm256_add_epi32(accv,
                              _mm256_cvtepu8_epi32(_mm_srli_si128(c_lo, 8)));
      accv = _mm256_add_epi32(accv, _mm256_cvtepu8_epi32(c_hi));
      accv = _mm256_add_epi32(accv,
                              _mm256_cvtepu8_epi32(_mm_srli_si128(c_hi, 8)));
    }
    alignas(32) std::int32_t lanes[8];
    store256(lanes, accv);
    for (int r = 0; r < 8; ++r) acc[r] += lanes[r];
    for (; t < hi; ++t) {
      const std::uint64_t xw = xwords[static_cast<std::size_t>(colind[t])];
      if (xw == 0) continue;
      const std::uint64_t counts = swar_popcnt_bytes(
          load_tile8(tiles + static_cast<std::size_t>(t) * 8) &
          (xw * 0x0101010101010101ull));
      for (int r = 0; r < 8; ++r) {
        acc[r] += static_cast<std::int32_t>((counts >> (8 * r)) & 0xFF);
      }
    }
  } else if constexpr (Dim == 16) {
    __m256i acc_lo = _mm256_setzero_si256();  // rows 0..7
    __m256i acc_hi = _mm256_setzero_si256();  // rows 8..15
    for (vidx_t t = lo; t < hi; ++t) {
      const word_t xw = xwords[static_cast<std::size_t>(colind[t])];
      if (xw == 0) continue;
      const __m256i xv = _mm256_set1_epi16(static_cast<short>(xw));
      const __m256i tv = loadu256(
          tiles + static_cast<std::size_t>(t) * 16);
      const __m256i c16 = _mm256_maddubs_epi16(
          avx2_popcnt_epi8(_mm256_and_si256(tv, xv)), _mm256_set1_epi8(1));
      acc_lo = _mm256_add_epi32(
          acc_lo, _mm256_cvtepu16_epi32(_mm256_castsi256_si128(c16)));
      acc_hi = _mm256_add_epi32(
          acc_hi, _mm256_cvtepu16_epi32(_mm256_extracti128_si256(c16, 1)));
    }
    alignas(32) std::int32_t lanes[8];
    store256(lanes, acc_lo);
    for (int r = 0; r < 8; ++r) acc[r] += lanes[r];
    store256(lanes, acc_hi);
    for (int r = 0; r < 8; ++r) acc[8 + r] += lanes[r];
  } else if constexpr (Dim == 32) {
    __m256i accv[4] = {_mm256_setzero_si256(), _mm256_setzero_si256(),
                       _mm256_setzero_si256(), _mm256_setzero_si256()};
    for (vidx_t t = lo; t < hi; ++t) {
      const word_t xw = xwords[static_cast<std::size_t>(colind[t])];
      if (xw == 0) continue;
      const __m256i xv = _mm256_set1_epi32(static_cast<int>(xw));
      const auto* base = tiles + static_cast<std::size_t>(t) * 32;
      for (int k = 0; k < 4; ++k) {
        const __m256i tv = loadu256(base + 8 * k);
        accv[k] = _mm256_add_epi32(
            accv[k], avx2_popcnt_epi32(_mm256_and_si256(tv, xv)));
      }
    }
    alignas(32) std::int32_t lanes[8];
    for (int k = 0; k < 4; ++k) {
      store256(lanes, accv[k]);
      for (int r = 0; r < 8; ++r) acc[8 * k + r] += lanes[r];
    }
  } else {
    bbf_row_accum_body<Dim>(tiles, colind, xwords, lo, hi, acc);
  }
}

template <int Dim>
BITGB_TGT_AVX2 void rows_pop_accum_avx2(
    const typename TileTraits<Dim>::word_t* tiles, vidx_t lo, vidx_t hi,
    std::int32_t* pop) {
  if constexpr (Dim == 8) {
    __m256i accv = _mm256_setzero_si256();
    vidx_t t = lo;
    for (; t + 4 <= hi; t += 4) {
      const __m256i tv = loadu256(
          tiles + static_cast<std::size_t>(t) * 8);
      const __m256i c = avx2_popcnt_epi8(tv);
      const __m128i c_lo = _mm256_castsi256_si128(c);
      const __m128i c_hi = _mm256_extracti128_si256(c, 1);
      accv = _mm256_add_epi32(accv, _mm256_cvtepu8_epi32(c_lo));
      accv = _mm256_add_epi32(accv,
                              _mm256_cvtepu8_epi32(_mm_srli_si128(c_lo, 8)));
      accv = _mm256_add_epi32(accv, _mm256_cvtepu8_epi32(c_hi));
      accv = _mm256_add_epi32(accv,
                              _mm256_cvtepu8_epi32(_mm_srli_si128(c_hi, 8)));
    }
    alignas(32) std::int32_t lanes[8];
    store256(lanes, accv);
    for (int r = 0; r < 8; ++r) pop[r] += lanes[r];
    for (; t < hi; ++t) {
      const std::uint64_t counts = swar_popcnt_bytes(
          load_tile8(tiles + static_cast<std::size_t>(t) * 8));
      for (int r = 0; r < 8; ++r) {
        pop[r] += static_cast<std::int32_t>((counts >> (8 * r)) & 0xFF);
      }
    }
  } else if constexpr (Dim == 16) {
    __m256i acc_lo = _mm256_setzero_si256();
    __m256i acc_hi = _mm256_setzero_si256();
    for (vidx_t t = lo; t < hi; ++t) {
      const __m256i tv = loadu256(
          tiles + static_cast<std::size_t>(t) * 16);
      const __m256i c16 =
          _mm256_maddubs_epi16(avx2_popcnt_epi8(tv), _mm256_set1_epi8(1));
      acc_lo = _mm256_add_epi32(
          acc_lo, _mm256_cvtepu16_epi32(_mm256_castsi256_si128(c16)));
      acc_hi = _mm256_add_epi32(
          acc_hi, _mm256_cvtepu16_epi32(_mm256_extracti128_si256(c16, 1)));
    }
    alignas(32) std::int32_t lanes[8];
    store256(lanes, acc_lo);
    for (int r = 0; r < 8; ++r) pop[r] += lanes[r];
    store256(lanes, acc_hi);
    for (int r = 0; r < 8; ++r) pop[8 + r] += lanes[r];
  } else if constexpr (Dim == 32) {
    __m256i accv[4] = {_mm256_setzero_si256(), _mm256_setzero_si256(),
                       _mm256_setzero_si256(), _mm256_setzero_si256()};
    for (vidx_t t = lo; t < hi; ++t) {
      const auto* base = tiles + static_cast<std::size_t>(t) * 32;
      for (int k = 0; k < 4; ++k) {
        const __m256i tv = loadu256(base + 8 * k);
        accv[k] = _mm256_add_epi32(accv[k], avx2_popcnt_epi32(tv));
      }
    }
    alignas(32) std::int32_t lanes[8];
    for (int k = 0; k < 4; ++k) {
      store256(lanes, accv[k]);
      for (int r = 0; r < 8; ++r) pop[8 * k + r] += lanes[r];
    }
  } else {
    rows_pop_accum_body<Dim>(tiles, lo, hi, pop);
  }
}

template <int Dim>
BITGB_TGT_AVX2 std::int64_t masked_pair_dot_avx2(
    const typename TileTraits<Dim>::word_t* awords,
    const typename TileTraits<Dim>::word_t* bwords,
    const typename TileTraits<Dim>::word_t* mwords) {
  using word_t = typename TileTraits<Dim>::word_t;
  if constexpr (Dim == 16) {
    const __m256i bv =
        loadu256(bwords);
    __m256i bitsel = _mm256_setr_epi16(
        static_cast<short>(1u << 0), static_cast<short>(1u << 1),
        static_cast<short>(1u << 2), static_cast<short>(1u << 3),
        static_cast<short>(1u << 4), static_cast<short>(1u << 5),
        static_cast<short>(1u << 6), static_cast<short>(1u << 7),
        static_cast<short>(1u << 8), static_cast<short>(1u << 9),
        static_cast<short>(1u << 10), static_cast<short>(1u << 11),
        static_cast<short>(1u << 12), static_cast<short>(1u << 13),
        static_cast<short>(1u << 14), static_cast<short>(1u << 15));
    __m256i acc16 = _mm256_setzero_si256();  // per-column sums (<= 256)
    std::int64_t scalar_sum = 0;
    for (int r = 0; r < 16; ++r) {
      const word_t mrow = mwords[r];
      if (mrow == 0) continue;
      const word_t arow = awords[r];
      if (arow == 0) continue;
      if (popcount(mrow) < 4) {
        for_each_set_bit(mrow, [&](int c) {
          scalar_sum += popcount(static_cast<word_t>(arow & bwords[c]));
        });
        continue;
      }
      const __m256i sel = _mm256_cmpeq_epi16(
          _mm256_and_si256(_mm256_set1_epi16(static_cast<short>(mrow)),
                           bitsel),
          bitsel);
      const __m256i anded =
          _mm256_and_si256(_mm256_set1_epi16(static_cast<short>(arow)), bv);
      const __m256i c16 =
          _mm256_maddubs_epi16(avx2_popcnt_epi8(anded), _mm256_set1_epi8(1));
      acc16 = _mm256_add_epi16(acc16, _mm256_and_si256(c16, sel));
    }
    return scalar_sum +
           avx2_hsum_epi32(_mm256_madd_epi16(acc16, _mm256_set1_epi16(1)));
  } else if constexpr (Dim == 32) {
    __m256i bv[4];
    __m256i bitsel[4];
    for (int k = 0; k < 4; ++k) {
      bv[k] = loadu256(bwords + 8 * k);
      bitsel[k] = _mm256_setr_epi32(
          static_cast<int>(1u << (8 * k + 0)),
          static_cast<int>(1u << (8 * k + 1)),
          static_cast<int>(1u << (8 * k + 2)),
          static_cast<int>(1u << (8 * k + 3)),
          static_cast<int>(1u << (8 * k + 4)),
          static_cast<int>(1u << (8 * k + 5)),
          static_cast<int>(1u << (8 * k + 6)),
          static_cast<int>(1u << (8 * k + 7)));
    }
    __m256i acc32 = _mm256_setzero_si256();
    std::int64_t scalar_sum = 0;
    for (int r = 0; r < 32; ++r) {
      const word_t mrow = mwords[r];
      if (mrow == 0) continue;
      const word_t arow = awords[r];
      if (arow == 0) continue;
      if (popcount(mrow) < 8) {
        for_each_set_bit(mrow, [&](int c) {
          scalar_sum += popcount(static_cast<word_t>(arow & bwords[c]));
        });
        continue;
      }
      const __m256i av = _mm256_set1_epi32(static_cast<int>(arow));
      const __m256i mv = _mm256_set1_epi32(static_cast<int>(mrow));
      for (int k = 0; k < 4; ++k) {
        const __m256i sel = _mm256_cmpeq_epi32(
            _mm256_and_si256(mv, bitsel[k]), bitsel[k]);
        const __m256i dot = avx2_popcnt_epi32(_mm256_and_si256(av, bv[k]));
        acc32 = _mm256_add_epi32(acc32, _mm256_and_si256(dot, sel));
      }
    }
    return scalar_sum + avx2_hsum_epi32(acc32);
  } else {
    return masked_pair_dot_body<Dim>(awords, bwords, mwords);
  }
}

template <int Dim>
BITGB_TGT_AVX2 void frontier_row_accum_avx2(
    const typename TileTraits<Dim>::word_t* tiles, const vidx_t* colind,
    vidx_t lo, vidx_t hi, const std::uint64_t* frows, std::size_t nfrows,
    std::uint64_t* acc) {
  using word_t = typename TileTraits<Dim>::word_t;
  if constexpr (Dim == 32) {
    // 32 batch words per tile block; per-bit OR is already competitive
    // and the block gather would dominate — keep the scalar walk.
    frontier_row_accum_body<Dim>(tiles, colind, lo, hi, frows, nfrows, acc);
  } else {
    constexpr int kGroups = Dim / 4;  // 64-bit lanes per 256-bit register
    __m256i bitsel[kGroups];
    for (int g = 0; g < kGroups; ++g) {
      bitsel[g] = _mm256_set_epi64x(
          static_cast<long long>(1u << (4 * g + 3)),
          static_cast<long long>(1u << (4 * g + 2)),
          static_cast<long long>(1u << (4 * g + 1)),
          static_cast<long long>(1u << (4 * g + 0)));
    }
    for (vidx_t t = lo; t < hi; ++t) {
      const auto base = static_cast<std::size_t>(colind[t]) *
                        static_cast<std::size_t>(Dim);
      const word_t* w = tiles + static_cast<std::size_t>(t) * Dim;
      if (base + Dim > nfrows) {
        // Tail tile-column: the frontier block is cut short; set bits
        // never point past nfrows (B2SR zero-tail invariant), so walk
        // them scalar.
        for (int r = 0; r < Dim; ++r) {
          if (w[r] == 0) continue;
          for_each_set_bit(w[r], [&](int j) {
            acc[r] |= frows[base + static_cast<std::size_t>(j)];
          });
        }
        continue;
      }
      __m256i fv[kGroups];
      for (int g = 0; g < kGroups; ++g) {
        fv[g] = loadu256(frows + base + 4 * g);
      }
      for (int r = 0; r < Dim; ++r) {
        if (w[r] == 0) continue;
        const __m256i wv = _mm256_set1_epi64x(static_cast<long long>(w[r]));
        __m256i red = _mm256_setzero_si256();
        for (int g = 0; g < kGroups; ++g) {
          const __m256i sel = _mm256_cmpeq_epi64(
              _mm256_and_si256(wv, bitsel[g]), bitsel[g]);
          red = _mm256_or_si256(red, _mm256_and_si256(fv[g], sel));
        }
        acc[r] |= avx2_hor_epi64(red);
      }
    }
  }
}

template <int Dim>
BITGB_TGT_AVX2 std::size_t pack_scatter_run_avx2(
    const vidx_t* cols, std::size_t i, std::size_t n, vidx_t base,
    typename TileTraits<Dim>::word_t& w) {
  using word_t = typename TileTraits<Dim>::word_t;
  if constexpr (Dim == 16 || Dim == 32) {
    // Eight sorted columns per iteration: compare against the tile's
    // right edge (in-run lanes form a prefix because the input is
    // sorted), variable-shift 1 << (c - base) per lane, OR-reduce.
    // Worthwhile only where one tile can hold long runs; dims 4/8 cap
    // runs at 8 columns and stay on the scalar body.
    const __m256i vlimit = _mm256_set1_epi32(base + Dim);
    const __m256i vbase = _mm256_set1_epi32(base);
    const __m256i ones = _mm256_set1_epi32(1);
    __m256i accv = _mm256_setzero_si256();
    while (i + 8 <= n) {
      const __m256i v = loadu256(cols + i);
      // vidx_t is a non-negative int32, so the signed compare is exact.
      const __m256i in = _mm256_cmpgt_epi32(vlimit, v);
      const auto m = static_cast<std::uint32_t>(
          _mm256_movemask_ps(_mm256_castsi256_ps(in)));
      if (m == 0) break;
      const __m256i bits = _mm256_sllv_epi32(ones, _mm256_sub_epi32(v, vbase));
      accv = _mm256_or_si256(accv, _mm256_and_si256(bits, in));
      i += static_cast<std::size_t>(__builtin_popcount(m));
      if (m != 0xFFu) break;
    }
    __m128i o = _mm_or_si128(_mm256_castsi256_si128(accv),
                             _mm256_extracti128_si256(accv, 1));
    o = _mm_or_si128(o, _mm_shuffle_epi32(o, _MM_SHUFFLE(1, 0, 3, 2)));
    o = _mm_or_si128(o, _mm_shuffle_epi32(o, _MM_SHUFFLE(2, 3, 0, 1)));
    w = static_cast<word_t>(
        w | static_cast<std::uint32_t>(_mm_cvtsi128_si32(o)));
    // Fewer than 8 columns left (or the run already ended, in which
    // case this is a no-op): finish on the scalar body.
    return pack_scatter_run_body<Dim>(cols, i, n, base, w);
  } else {
    return pack_scatter_run_body<Dim>(cols, i, n, base, w);
  }
}

template <int Dim>
BITGB_TGT_AVX2 void spgemm_tile_accum_avx2(
    const typename TileTraits<Dim>::word_t* awords,
    const typename TileTraits<Dim>::word_t* bwords,
    typename TileTraits<Dim>::word_t* cacc) {
  using word_t = typename TileTraits<Dim>::word_t;
  if constexpr (Dim == 16) {
    // Whole B tile in one register; per A row, bit-to-lane select of
    // the B rows named by the set bits, lane OR-reduce into the
    // accumulator row.
    const __m256i bv =
        loadu256(bwords);
    const __m256i bitsel = _mm256_setr_epi16(
        static_cast<short>(1u << 0), static_cast<short>(1u << 1),
        static_cast<short>(1u << 2), static_cast<short>(1u << 3),
        static_cast<short>(1u << 4), static_cast<short>(1u << 5),
        static_cast<short>(1u << 6), static_cast<short>(1u << 7),
        static_cast<short>(1u << 8), static_cast<short>(1u << 9),
        static_cast<short>(1u << 10), static_cast<short>(1u << 11),
        static_cast<short>(1u << 12), static_cast<short>(1u << 13),
        static_cast<short>(1u << 14), static_cast<short>(1u << 15));
    for (int r = 0; r < 16; ++r) {
      const word_t arow = awords[r];
      if (arow == 0) continue;
      const __m256i sel = _mm256_cmpeq_epi16(
          _mm256_and_si256(_mm256_set1_epi16(static_cast<short>(arow)),
                           bitsel),
          bitsel);
      const __m256i red = _mm256_and_si256(bv, sel);
      __m128i o = _mm_or_si128(_mm256_castsi256_si128(red),
                               _mm256_extracti128_si256(red, 1));
      o = _mm_or_si128(o, _mm_shuffle_epi32(o, _MM_SHUFFLE(1, 0, 3, 2)));
      o = _mm_or_si128(o, _mm_shuffle_epi32(o, _MM_SHUFFLE(2, 3, 0, 1)));
      o = _mm_or_si128(o, _mm_srli_epi32(o, 16));
      cacc[r] = static_cast<word_t>(
          cacc[r] | static_cast<std::uint32_t>(_mm_cvtsi128_si32(o)));
    }
  } else if constexpr (Dim == 32) {
    __m256i bv[4];
    __m256i bitsel[4];
    for (int k = 0; k < 4; ++k) {
      bv[k] = loadu256(bwords + 8 * k);
      bitsel[k] = _mm256_setr_epi32(
          static_cast<int>(1u << (8 * k + 0)),
          static_cast<int>(1u << (8 * k + 1)),
          static_cast<int>(1u << (8 * k + 2)),
          static_cast<int>(1u << (8 * k + 3)),
          static_cast<int>(1u << (8 * k + 4)),
          static_cast<int>(1u << (8 * k + 5)),
          static_cast<int>(1u << (8 * k + 6)),
          static_cast<int>(1u << (8 * k + 7)));
    }
    for (int r = 0; r < 32; ++r) {
      const word_t arow = awords[r];
      if (arow == 0) continue;
      const __m256i av = _mm256_set1_epi32(static_cast<int>(arow));
      __m256i red = _mm256_setzero_si256();
      for (int k = 0; k < 4; ++k) {
        const __m256i sel =
            _mm256_cmpeq_epi32(_mm256_and_si256(av, bitsel[k]), bitsel[k]);
        red = _mm256_or_si256(red, _mm256_and_si256(bv[k], sel));
      }
      __m128i o = _mm_or_si128(_mm256_castsi256_si128(red),
                               _mm256_extracti128_si256(red, 1));
      o = _mm_or_si128(o, _mm_shuffle_epi32(o, _MM_SHUFFLE(1, 0, 3, 2)));
      o = _mm_or_si128(o, _mm_shuffle_epi32(o, _MM_SHUFFLE(2, 3, 0, 1)));
      cacc[r] = static_cast<word_t>(
          cacc[r] | static_cast<std::uint32_t>(_mm_cvtsi128_si32(o)));
    }
  } else {
    spgemm_tile_accum_body<Dim>(awords, bwords, cacc);
  }
}

#endif  // BITGB_SIMD_X86

}  // namespace

Backend active_backend() {
  static const Backend b = detect_backend();
  return b;
}

const char* backend_name(Backend b) {
  switch (b) {
    case Backend::kAvx2: return "avx2";
    case Backend::kSse42: return "sse4.2";
    case Backend::kScalar: return "scalar";
  }
  return "?";
}

bool vector_backend_available() {
  return active_backend() != Backend::kScalar;
}

// ---------------------------------------------------------------------
// Public dispatchers: one branch on the cached backend per tile-row.
// ---------------------------------------------------------------------

template <int Dim>
typename TileTraits<Dim>::word_t bbb_row_or(
    const typename TileTraits<Dim>::word_t* tiles, const vidx_t* colind,
    const typename TileTraits<Dim>::word_t* xwords, vidx_t lo, vidx_t hi) {
#if BITGB_SIMD_X86
  switch (active_backend()) {
    case Backend::kAvx2:
      return bbb_row_or_avx2<Dim>(tiles, colind, xwords, lo, hi);
    case Backend::kSse42:
      return bbb_row_or_sse<Dim>(tiles, colind, xwords, lo, hi);
    case Backend::kScalar: break;
  }
#endif
  return bbb_row_or_scalar<Dim>(tiles, colind, xwords, lo, hi);
}

template <int Dim>
void bbf_row_accum(const typename TileTraits<Dim>::word_t* tiles,
                   const vidx_t* colind,
                   const typename TileTraits<Dim>::word_t* xwords, vidx_t lo,
                   vidx_t hi, std::int32_t* acc) {
#if BITGB_SIMD_X86
  switch (active_backend()) {
    case Backend::kAvx2:
      bbf_row_accum_avx2<Dim>(tiles, colind, xwords, lo, hi, acc);
      return;
    case Backend::kSse42:
      bbf_row_accum_sse<Dim>(tiles, colind, xwords, lo, hi, acc);
      return;
    case Backend::kScalar: break;
  }
#endif
  bbf_row_accum_scalar<Dim>(tiles, colind, xwords, lo, hi, acc);
}

template <int Dim>
void rows_pop_accum(const typename TileTraits<Dim>::word_t* tiles, vidx_t lo,
                    vidx_t hi, std::int32_t* pop) {
#if BITGB_SIMD_X86
  switch (active_backend()) {
    case Backend::kAvx2: rows_pop_accum_avx2<Dim>(tiles, lo, hi, pop); return;
    case Backend::kSse42: rows_pop_accum_sse<Dim>(tiles, lo, hi, pop); return;
    case Backend::kScalar: break;
  }
#endif
  rows_pop_accum_scalar<Dim>(tiles, lo, hi, pop);
}

template <int Dim>
std::int64_t masked_pair_dot(const typename TileTraits<Dim>::word_t* awords,
                             const typename TileTraits<Dim>::word_t* bwords,
                             const typename TileTraits<Dim>::word_t* mwords) {
#if BITGB_SIMD_X86
  switch (active_backend()) {
    case Backend::kAvx2: return masked_pair_dot_avx2<Dim>(awords, bwords, mwords);
    case Backend::kSse42: return masked_pair_dot_sse<Dim>(awords, bwords, mwords);
    case Backend::kScalar: break;
  }
#endif
  return masked_pair_dot_scalar<Dim>(awords, bwords, mwords);
}

template <int Dim>
void frontier_row_accum(const typename TileTraits<Dim>::word_t* tiles,
                        const vidx_t* colind, vidx_t lo, vidx_t hi,
                        const std::uint64_t* frows, std::size_t nfrows,
                        std::uint64_t* acc) {
#if BITGB_SIMD_X86
  switch (active_backend()) {
    case Backend::kAvx2:
      frontier_row_accum_avx2<Dim>(tiles, colind, lo, hi, frows, nfrows, acc);
      return;
    case Backend::kSse42:
      frontier_row_accum_sse<Dim>(tiles, colind, lo, hi, frows, nfrows, acc);
      return;
    case Backend::kScalar: break;
  }
#endif
  frontier_row_accum_scalar<Dim>(tiles, colind, lo, hi, frows, nfrows, acc);
}

template <int Dim>
std::size_t pack_scatter_run(const vidx_t* cols, std::size_t i, std::size_t n,
                             vidx_t base,
                             typename TileTraits<Dim>::word_t& w) {
#if BITGB_SIMD_X86
  switch (active_backend()) {
    case Backend::kAvx2:
      return pack_scatter_run_avx2<Dim>(cols, i, n, base, w);
    case Backend::kSse42:
      return pack_scatter_run_sse<Dim>(cols, i, n, base, w);
    case Backend::kScalar: break;
  }
#endif
  return pack_scatter_run_scalar<Dim>(cols, i, n, base, w);
}

template <int Dim>
void spgemm_tile_accum(const typename TileTraits<Dim>::word_t* awords,
                       const typename TileTraits<Dim>::word_t* bwords,
                       typename TileTraits<Dim>::word_t* cacc) {
#if BITGB_SIMD_X86
  switch (active_backend()) {
    case Backend::kAvx2:
      spgemm_tile_accum_avx2<Dim>(awords, bwords, cacc);
      return;
    case Backend::kSse42:
      spgemm_tile_accum_sse<Dim>(awords, bwords, cacc);
      return;
    case Backend::kScalar: break;
  }
#endif
  spgemm_tile_accum_scalar<Dim>(awords, bwords, cacc);
}

#define BITGB_INSTANTIATE_SIMD(Dim)                                           \
  template TileTraits<Dim>::word_t bbb_row_or<Dim>(                           \
      const TileTraits<Dim>::word_t*, const vidx_t*,                         \
      const TileTraits<Dim>::word_t*, vidx_t, vidx_t);                        \
  template void bbf_row_accum<Dim>(const TileTraits<Dim>::word_t*,            \
                                   const vidx_t*,                             \
                                   const TileTraits<Dim>::word_t*, vidx_t,    \
                                   vidx_t, std::int32_t*);                    \
  template void rows_pop_accum<Dim>(const TileTraits<Dim>::word_t*, vidx_t,   \
                                    vidx_t, std::int32_t*);                   \
  template std::int64_t masked_pair_dot<Dim>(                                 \
      const TileTraits<Dim>::word_t*, const TileTraits<Dim>::word_t*,         \
      const TileTraits<Dim>::word_t*);                                        \
  template void frontier_row_accum<Dim>(const TileTraits<Dim>::word_t*,       \
                                        const vidx_t*, vidx_t, vidx_t,        \
                                        const std::uint64_t*, std::size_t,    \
                                        std::uint64_t*);                      \
  template std::size_t pack_scatter_run<Dim>(const vidx_t*, std::size_t,      \
                                             std::size_t, vidx_t,             \
                                             TileTraits<Dim>::word_t&);       \
  template void spgemm_tile_accum<Dim>(const TileTraits<Dim>::word_t*,        \
                                       const TileTraits<Dim>::word_t*,        \
                                       TileTraits<Dim>::word_t*)

BITGB_INSTANTIATE_SIMD(4);
BITGB_INSTANTIATE_SIMD(8);
BITGB_INSTANTIATE_SIMD(16);
BITGB_INSTANTIATE_SIMD(32);

#undef BITGB_INSTANTIATE_SIMD

}  // namespace simd
}  // namespace bitgb
