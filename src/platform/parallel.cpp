#include "platform/parallel.hpp"

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <thread>
#include <vector>

namespace bitgb {

namespace {

thread_local bool t_in_pool_work = false;

/// Lazily-spawned worker pool, shared by every caller.  One job runs at
/// a time (parallel_for is never nested — in_parallel_region() degrades
/// nested calls to serial, and concurrent callers queue on job_mutex_);
/// participants — the calling thread plus the first width-1 workers —
/// steal fixed-size chunks off a shared atomic cursor until the range
/// is drained.  The job *width* is a per-call argument: the pool holds
/// no process-global thread-count state.
class WorkerPool {
 public:
  static WorkerPool& instance() {
    static WorkerPool pool;
    return pool;
  }

  void run(std::int64_t begin, std::int64_t end, std::int64_t chunk,
           void (*body)(const void*, std::int64_t, std::int64_t),
           const void* ctx, int width) {
    // Empty or inverted ranges dispatch nothing.  Without this guard an
    // end < begin call drives `helpers` (and with it participants_ /
    // busy_) negative, and done_cv_.wait below blocks forever on a
    // busy_ count that can never reach zero.
    if (end <= begin) return;
    const std::lock_guard<std::mutex> job_lock(job_mutex_);
    const int helpers = static_cast<int>(std::max<std::int64_t>(
        0, std::min<std::int64_t>(width - 1, end - begin)));
    ensure_workers(helpers);
    {
      const std::lock_guard<std::mutex> lk(m_);
      body_ = body;
      ctx_ = ctx;
      end_ = end;
      chunk_ = chunk < 1 ? 1 : chunk;
      next_.store(begin, std::memory_order_relaxed);
      participants_ = std::min(helpers, static_cast<int>(workers_.size()));
      busy_ = participants_;
      ++generation_;
    }
    cv_.notify_all();
    t_in_pool_work = true;
    work();
    t_in_pool_work = false;
    std::unique_lock<std::mutex> lk(m_);
    done_cv_.wait(lk, [&] { return busy_ == 0; });
  }

 private:
  WorkerPool() = default;

  ~WorkerPool() {
    {
      const std::lock_guard<std::mutex> lk(m_);
      stop_ = true;
    }
    cv_.notify_all();
    for (auto& w : workers_) w.join();
  }

  void ensure_workers(int target) {
    while (static_cast<int>(workers_.size()) < target) {
      const int index = static_cast<int>(workers_.size());
      workers_.emplace_back([this, index] { worker_loop(index); });
    }
  }

  void work() {
    for (;;) {
      const std::int64_t lo =
          next_.fetch_add(chunk_, std::memory_order_relaxed);
      if (lo >= end_) return;
      body_(ctx_, lo, std::min(end_, lo + chunk_));
    }
  }

  void worker_loop(int index) {
    t_in_pool_work = true;
    std::uint64_t seen = 0;
    for (;;) {
      {
        std::unique_lock<std::mutex> lk(m_);
        cv_.wait(lk, [&] { return stop_ || generation_ != seen; });
        if (stop_) return;
        seen = generation_;
        if (index >= participants_) continue;  // not part of this job
      }
      work();
      {
        const std::lock_guard<std::mutex> lk(m_);
        if (--busy_ == 0) done_cv_.notify_all();
      }
    }
  }

  std::mutex job_mutex_;  ///< serializes whole jobs
  std::mutex m_;          ///< guards the job fields below
  std::condition_variable cv_;
  std::condition_variable done_cv_;
  std::vector<std::thread> workers_;
  void (*body_)(const void*, std::int64_t, std::int64_t) = nullptr;
  const void* ctx_ = nullptr;
  std::int64_t end_ = 0;
  std::int64_t chunk_ = 1;
  std::atomic<std::int64_t> next_{0};
  std::uint64_t generation_ = 0;
  int participants_ = 0;
  int busy_ = 0;
  bool stop_ = false;
};

}  // namespace

int hardware_width() noexcept {
  static const int width = [] {
    const unsigned hc = std::thread::hardware_concurrency();
    return hc == 0 ? 1 : static_cast<int>(hc);
  }();
  return width;
}

namespace detail {

bool in_parallel_region() noexcept { return t_in_pool_work; }

void pool_run(std::int64_t begin, std::int64_t end, std::int64_t chunk,
              void (*body)(const void*, std::int64_t, std::int64_t),
              const void* ctx, int width) {
  WorkerPool::instance().run(begin, end, chunk, body, ctx, width);
}

}  // namespace detail

void atomic_min_float(float* cell, float v) noexcept {
  std::atomic_ref<float> ref(*cell);
  float cur = ref.load(std::memory_order_relaxed);
  while (v < cur &&
         !ref.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

void atomic_add_float(float* cell, float v) noexcept {
  std::atomic_ref<float> ref(*cell);
  float cur = ref.load(std::memory_order_relaxed);
  while (!ref.compare_exchange_weak(cur, cur + v, std::memory_order_relaxed)) {
  }
}

void atomic_or_u32(std::uint32_t* cell, std::uint32_t v) noexcept {
  // std::atomic_ref, like the float CAS helpers above: casting the
  // plain uint32_t* to std::atomic<uint32_t>* is undefined behavior by
  // the standard even where the object layouts happen to agree.
  static_assert(std::atomic_ref<std::uint32_t>::is_always_lock_free,
                "frontier word OR must be a lock-free RMW");
  std::atomic_ref<std::uint32_t> ref(*cell);
  ref.fetch_or(v, std::memory_order_relaxed);
}

}  // namespace bitgb
