#include "platform/parallel.hpp"

#include <atomic>

namespace bitgb {

namespace {
// The kernels allocate plain float/uint32 buffers (to keep the data
// layout byte-identical to the GPU original); atomic RMW on them is done
// through std::atomic_ref semantics emulated with compare_exchange on an
// atomic view.  C++20 guarantees std::atomic_ref<float> is lock-free on
// this platform's 32-bit cells.
std::atomic<std::uint32_t>& as_atomic_u32(std::uint32_t* p) noexcept {
  return *reinterpret_cast<std::atomic<std::uint32_t>*>(p);
}
}  // namespace

void atomic_min_float(float* cell, float v) noexcept {
  std::atomic_ref<float> ref(*cell);
  float cur = ref.load(std::memory_order_relaxed);
  while (v < cur &&
         !ref.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

void atomic_add_float(float* cell, float v) noexcept {
  std::atomic_ref<float> ref(*cell);
  float cur = ref.load(std::memory_order_relaxed);
  while (!ref.compare_exchange_weak(cur, cur + v, std::memory_order_relaxed)) {
  }
}

void atomic_or_u32(std::uint32_t* cell, std::uint32_t v) noexcept {
  as_atomic_u32(cell).fetch_or(v, std::memory_order_relaxed);
}

}  // namespace bitgb
