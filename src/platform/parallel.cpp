#include "platform/parallel.hpp"

#include "platform/thread_annotations.hpp"

#include <atomic>
#include <thread>
#include <vector>

namespace bitgb {

namespace {

thread_local bool t_in_pool_work = false;

/// Lazily-spawned worker pool, shared by every caller.  One job runs at
/// a time (parallel_for is never nested — in_parallel_region() degrades
/// nested calls to serial, and concurrent callers queue on job_mutex_);
/// participants — the calling thread plus the first width-1 workers —
/// steal fixed-size chunks off a shared atomic cursor until the range
/// is drained.  The job *width* is a per-call argument: the pool holds
/// no process-global thread-count state.
class WorkerPool {
 public:
  static WorkerPool& instance() {
    static WorkerPool pool;
    return pool;
  }

  void run(std::int64_t begin, std::int64_t end, std::int64_t chunk,
           void (*body)(const void*, std::int64_t, std::int64_t),
           const void* ctx, int width) EXCLUDES(job_mutex_, m_) {
    // Empty or inverted ranges dispatch nothing.  Without this guard an
    // end < begin call drives `helpers` (and with it participants_ /
    // busy_) negative, and done_cv_.wait below blocks forever on a
    // busy_ count that can never reach zero.
    if (end <= begin) return;
    const MutexLock job_lock(job_mutex_);
    const int helpers = static_cast<int>(std::max<std::int64_t>(
        0, std::min<std::int64_t>(width - 1, end - begin)));
    ensure_workers(helpers);
    {
      const MutexLock lk(m_);
      body_ = body;
      ctx_ = ctx;
      end_ = end;
      chunk_ = chunk < 1 ? 1 : chunk;
      next_.store(begin, std::memory_order_relaxed);
      participants_ = std::min(helpers, static_cast<int>(workers_.size()));
      busy_ = participants_;
      ++generation_;
    }
    cv_.notify_all();
    t_in_pool_work = true;
    work();
    t_in_pool_work = false;
    const MutexLock lk(m_);
    while (busy_ != 0) done_cv_.wait(m_);
  }

 private:
  WorkerPool() = default;

  ~WorkerPool() EXCLUDES(job_mutex_, m_) {
    {
      const MutexLock lk(m_);
      stop_ = true;
    }
    cv_.notify_all();
    // Joining under job_mutex_ keeps the workers_ container story
    // consistent for the analysis; workers never touch job_mutex_, so
    // holding it across the joins cannot deadlock.
    const MutexLock job_lock(job_mutex_);
    for (auto& w : workers_) w.join();
  }

  void ensure_workers(int target) REQUIRES(job_mutex_) {
    while (static_cast<int>(workers_.size()) < target) {
      const int index = static_cast<int>(workers_.size());
      workers_.emplace_back([this, index] { worker_loop(index); });
    }
  }

  /// The chunk-stealing inner loop, deliberately OUTSIDE the analysis:
  /// it reads the job descriptor (body_/ctx_/end_/chunk_) lock-free.
  /// That is race-free by the job protocol, not by a capability the
  /// analysis can see: the descriptor only changes inside run() while
  /// job_mutex_ serializes whole jobs AND busy_ == 0 says every
  /// participant of the previous job has left work(); participants
  /// enter work() only after observing the new generation under m_, so
  /// the descriptor writes happen-before every lock-free read.  next_
  /// is an atomic cursor and needs no lock by construction.
  void work() NO_THREAD_SAFETY_ANALYSIS {
    for (;;) {
      const std::int64_t lo =
          next_.fetch_add(chunk_, std::memory_order_relaxed);
      if (lo >= end_) return;
      body_(ctx_, lo, std::min(end_, lo + chunk_));
    }
  }

  void worker_loop(int index) EXCLUDES(m_) {
    t_in_pool_work = true;
    std::uint64_t seen = 0;
    for (;;) {
      {
        const MutexLock lk(m_);
        while (!stop_ && generation_ == seen) cv_.wait(m_);
        if (stop_) return;
        seen = generation_;
        if (index >= participants_) continue;  // not part of this job
      }
      work();
      {
        const MutexLock lk(m_);
        if (--busy_ == 0) done_cv_.notify_all();
      }
    }
  }

  Mutex job_mutex_;  ///< serializes whole jobs; held across ensure_workers
  Mutex m_ ACQUIRED_AFTER(job_mutex_);  ///< guards the job fields below
  CondVar cv_;
  CondVar done_cv_;
  std::vector<std::thread> workers_ GUARDED_BY(job_mutex_);
  /// Job descriptor: written under m_ in run(), read lock-free in
  /// work() under the quiescence protocol documented there.
  void (*body_)(const void*, std::int64_t, std::int64_t)
      GUARDED_BY(m_) = nullptr;
  const void* ctx_ GUARDED_BY(m_) = nullptr;
  std::int64_t end_ GUARDED_BY(m_) = 0;
  std::int64_t chunk_ GUARDED_BY(m_) = 1;
  std::atomic<std::int64_t> next_{0};
  std::uint64_t generation_ GUARDED_BY(m_) = 0;
  int participants_ GUARDED_BY(m_) = 0;
  int busy_ GUARDED_BY(m_) = 0;
  bool stop_ GUARDED_BY(m_) = false;
};

}  // namespace

int hardware_width() noexcept {
  static const int width = [] {
    const unsigned hc = std::thread::hardware_concurrency();
    return hc == 0 ? 1 : static_cast<int>(hc);
  }();
  return width;
}

namespace detail {

bool in_parallel_region() noexcept { return t_in_pool_work; }

void pool_run(std::int64_t begin, std::int64_t end, std::int64_t chunk,
              void (*body)(const void*, std::int64_t, std::int64_t),
              const void* ctx, int width) {
  WorkerPool::instance().run(begin, end, chunk, body, ctx, width);
}

}  // namespace detail

void atomic_min_float(float* cell, float v) noexcept {
  std::atomic_ref<float> ref(*cell);
  float cur = ref.load(std::memory_order_relaxed);
  while (v < cur &&
         !ref.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

void atomic_add_float(float* cell, float v) noexcept {
  std::atomic_ref<float> ref(*cell);
  float cur = ref.load(std::memory_order_relaxed);
  while (!ref.compare_exchange_weak(cur, cur + v, std::memory_order_relaxed)) {
  }
}

void atomic_or_u32(std::uint32_t* cell, std::uint32_t v) noexcept {
  // std::atomic_ref, like the float CAS helpers above: casting the
  // plain uint32_t* to std::atomic<uint32_t>* is undefined behavior by
  // the standard even where the object layouts happen to agree.
  static_assert(std::atomic_ref<std::uint32_t>::is_always_lock_free,
                "frontier word OR must be a lock-free RMW");
  std::atomic_ref<std::uint32_t> ref(*cell);
  ref.fetch_or(v, std::memory_order_relaxed);
}

}  // namespace bitgb
