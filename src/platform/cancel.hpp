// CancelToken — cooperative cancellation for long-running algorithms.
//
// A token is armed with a deadline, a flag, or both; algorithms poll
// `cancelled()` at level/iteration boundaries (one poll per frontier
// sweep or PageRank iteration — never inside a kernel, so a kernel
// sweep remains the cancellation latency bound).  On observing a fired
// token an algorithm RETURNS EARLY with a valid prefix of its result
// (levels scattered so far, iterations completed so far) instead of
// throwing: cancellation is an expected outcome, not a failure, and the
// caller — who armed the token — decides what the partial result means
// (the serving batcher turns it into Status::kShedDeadline).
//
// The token is owned by the caller and threaded through Context (and
// from there into Exec); a null token pointer means "never cancelled"
// and costs one branch per poll.  `cancelled()` is safe to call from
// any thread: the flag is an atomic, and the deadline comparison reads
// an immutable time_point, so one token can cancel a wave that fans out
// across the worker pool.
#pragma once

#include <atomic>
#include <chrono>

namespace bitgb {

class CancelToken {
 public:
  using clock = std::chrono::steady_clock;

  /// Flag-only token: fires when request_cancel() is called.
  CancelToken() = default;

  /// Deadline token: fires at `deadline` (or earlier via the flag).
  explicit CancelToken(clock::time_point deadline) : deadline_(deadline) {}

  CancelToken(const CancelToken&) = delete;
  CancelToken& operator=(const CancelToken&) = delete;

  /// Fire the token explicitly (idempotent, any thread).
  void request_cancel() { flag_.store(true, std::memory_order_relaxed); }

  /// Has the flag been raised?  (Ignores the deadline — telemetry.)
  [[nodiscard]] bool cancel_requested() const {
    return flag_.load(std::memory_order_relaxed);
  }

  /// The poll: flag raised, or deadline passed.  The deadline branch
  /// costs one clock read; tokens without a deadline skip it.
  [[nodiscard]] bool cancelled() const {
    if (flag_.load(std::memory_order_relaxed)) return true;
    return deadline_ != clock::time_point::max() &&
           clock::now() >= deadline_;
  }

  [[nodiscard]] clock::time_point deadline() const { return deadline_; }

 private:
  std::atomic<bool> flag_{false};
  const clock::time_point deadline_ = clock::time_point::max();
};

}  // namespace bitgb
