#include "platform/device_profile.hpp"

#include "platform/parallel.hpp"

#include <thread>

namespace bitgb {

namespace {
int hardware_threads() {
  const unsigned hc = std::thread::hardware_concurrency();
  return hc == 0 ? 1 : static_cast<int>(hc);
}
}  // namespace

DeviceProfile pascal_analog() {
  return DeviceProfile{"pascal-analog", "NVIDIA GTX 1080 (Pascal)", 1,
                       KernelVariant::kAuto};
}

DeviceProfile volta_analog() {
  return DeviceProfile{"volta-analog", "NVIDIA Titan V (Volta)",
                       hardware_threads(), KernelVariant::kAuto};
}

std::vector<DeviceProfile> all_profiles() {
  return {pascal_analog(), volta_analog()};
}

DeviceProfile with_variant(DeviceProfile p, KernelVariant v) {
  p.variant = v;
  p.name += std::string("+") + kernel_variant_name(v);
  return p;
}

std::string simd_summary() {
  return std::string("simd engine: ") +
         simd::backend_name(simd::active_backend()) +
         " (runtime-verified), variant: " +
         kernel_variant_name(kernel_variant());
}

ProfileScope::ProfileScope(const DeviceProfile& p)
    : previous_threads_(max_threads()), previous_variant_(kernel_variant()) {
  set_threads(p.num_threads);
  if (p.variant != KernelVariant::kAuto) set_kernel_variant(p.variant);
}

ProfileScope::~ProfileScope() {
  set_threads(previous_threads_);
  set_kernel_variant(previous_variant_);
}

}  // namespace bitgb
