#include "platform/device_profile.hpp"

#include "platform/parallel.hpp"

namespace bitgb {

DeviceProfile pascal_analog() {
  return DeviceProfile{"pascal-analog", "NVIDIA GTX 1080 (Pascal)", 1,
                       KernelVariant::kAuto};
}

DeviceProfile volta_analog() {
  return DeviceProfile{"volta-analog", "NVIDIA Titan V (Volta)",
                       hardware_width(), KernelVariant::kAuto};
}

std::vector<DeviceProfile> all_profiles() {
  return {pascal_analog(), volta_analog()};
}

DeviceProfile with_variant(DeviceProfile p, KernelVariant v) {
  p.variant = v;
  p.name += std::string("+") + kernel_variant_name(v);
  return p;
}

Context context_for(const DeviceProfile& p, KernelTimeSink* sink) {
  Context ctx;
  ctx.threads = p.num_threads;
  ctx.variant = p.variant;
  ctx.timer = sink;
  return ctx;
}

std::string simd_summary() {
  return std::string("simd engine: ") +
         simd::backend_name(simd::active_backend()) + " (runtime-verified)";
}

}  // namespace bitgb
