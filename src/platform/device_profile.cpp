#include "platform/device_profile.hpp"

#include "platform/parallel.hpp"

#include <thread>

namespace bitgb {

namespace {
int hardware_threads() {
  const unsigned hc = std::thread::hardware_concurrency();
  return hc == 0 ? 1 : static_cast<int>(hc);
}
}  // namespace

DeviceProfile pascal_analog() {
  return DeviceProfile{"pascal-analog", "NVIDIA GTX 1080 (Pascal)", 1};
}

DeviceProfile volta_analog() {
  return DeviceProfile{"volta-analog", "NVIDIA Titan V (Volta)",
                       hardware_threads()};
}

std::vector<DeviceProfile> all_profiles() {
  return {pascal_analog(), volta_analog()};
}

ProfileScope::ProfileScope(const DeviceProfile& p)
    : previous_threads_(max_threads()) {
  set_threads(p.num_threads);
}

ProfileScope::~ProfileScope() { set_threads(previous_threads_); }

}  // namespace bitgb
