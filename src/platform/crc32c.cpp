#include "platform/crc32c.hpp"

#include <array>
#include <bit>
#include <cstring>

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__)) && \
    !defined(BITGB_SIMD_DISABLE)
#define BITGB_CRC32C_X86 1
#include <nmmintrin.h>
#else
#define BITGB_CRC32C_X86 0
#endif

namespace bitgb {

namespace {

/// Reflected Castagnoli polynomial (0x1EDC6F41 bit-reversed).
constexpr std::uint32_t kPoly = 0x82F63B78u;

struct Crc32cTables {
  std::uint32_t t[8][256];
};

constexpr Crc32cTables make_tables() {
  Crc32cTables tb{};
  for (int i = 0; i < 256; ++i) {
    std::uint32_t c = static_cast<std::uint32_t>(i);
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) != 0 ? (c >> 1) ^ kPoly : c >> 1;
    }
    tb.t[0][i] = c;
  }
  // Slice tables: t[j][b] advances byte b through j additional zero
  // bytes, so eight lookups retire eight input bytes per iteration.
  for (int i = 0; i < 256; ++i) {
    std::uint32_t c = tb.t[0][i];
    for (int j = 1; j < 8; ++j) {
      c = tb.t[0][c & 0xffu] ^ (c >> 8);
      tb.t[j][i] = c;
    }
  }
  return tb;
}

constexpr Crc32cTables kTables = make_tables();

/// Raw-state software body (no initial/final inversion).
std::uint32_t sw_update(std::uint32_t state, const unsigned char* p,
                        std::size_t n) {
  if constexpr (std::endian::native == std::endian::little) {
    while (n >= 8) {
      std::uint64_t v;
      std::memcpy(&v, p, 8);
      v ^= state;
      state = kTables.t[7][v & 0xff] ^ kTables.t[6][(v >> 8) & 0xff] ^
              kTables.t[5][(v >> 16) & 0xff] ^ kTables.t[4][(v >> 24) & 0xff] ^
              kTables.t[3][(v >> 32) & 0xff] ^ kTables.t[2][(v >> 40) & 0xff] ^
              kTables.t[1][(v >> 48) & 0xff] ^ kTables.t[0][(v >> 56) & 0xff];
      p += 8;
      n -= 8;
    }
  }
  while (n-- != 0) {
    state = kTables.t[0][(state ^ *p++) & 0xffu] ^ (state >> 8);
  }
  return state;
}

#if BITGB_CRC32C_X86
__attribute__((target("sse4.2"))) std::uint32_t hw_update(
    std::uint32_t state, const unsigned char* p, std::size_t n) {
  std::uint64_t s = state;
  while (n >= 8) {
    std::uint64_t v;
    std::memcpy(&v, p, 8);
    s = _mm_crc32_u64(s, v);
    p += 8;
    n -= 8;
  }
  auto s32 = static_cast<std::uint32_t>(s);
  while (n-- != 0) s32 = _mm_crc32_u8(s32, *p++);
  return s32;
}

bool hw_available() {
  static const bool ok = __builtin_cpu_supports("sse4.2") != 0;
  return ok;
}
#endif

}  // namespace

std::uint32_t crc32c(const void* data, std::size_t len, std::uint32_t crc) {
  const auto* p = static_cast<const unsigned char*>(data);
  const std::uint32_t state = ~crc;
#if BITGB_CRC32C_X86
  if (hw_available()) return ~hw_update(state, p, len);
#endif
  return ~sw_update(state, p, len);
}

namespace detail {

std::uint32_t crc32c_sw(const void* data, std::size_t len, std::uint32_t crc) {
  return ~sw_update(~crc, static_cast<const unsigned char*>(data), len);
}

bool crc32c_hw_active() {
#if BITGB_CRC32C_X86
  return hw_available();
#else
  return false;
#endif
}

}  // namespace detail

}  // namespace bitgb
