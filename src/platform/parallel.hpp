// Shared-memory parallel runtime.
//
// The paper maps one tile-row to one warp and lets the SM scheduler run
// up to 64 warps concurrently (§IV, warp-consolidation model).  The host
// analog is a parallel loop over tile rows.  All kernels parallelize
// through this header, and every entry point takes the worker width as
// an explicit argument — there is no process-global thread count to
// mutate, so two queries running concurrently can use different thread
// budgets (their Contexts carry the width; see platform/context.hpp).
//
// The backend is a built-in std::thread chunk-stealing pool —
// deliberately NOT OpenMP: gcc compiles every function differently in
// -fopenmp mode and the *serial* code of the hot kernels measurably
// regresses (~10-30% on the µs-scale BMV/frontier loops), which would
// tax the 1-thread pascal-analog profile that anchors the paper
// comparison.  The pool gives the volta-analog profile real threads
// with zero cost to the serial paths, and builds on any toolchain.
// The pool itself is shared (workers are lazily spawned up to the
// hardware width and reused by every caller); the *width* of each job
// is per-call, which is what makes the budget a per-Context property.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <type_traits>
#include <vector>

namespace bitgb {

/// Number of hardware threads (>= 1).  This is the width a `width = 0`
/// parallel region resolves to — a cached std::thread::hardware_concurrency.
[[nodiscard]] int hardware_width() noexcept;

/// Hard ceiling on any explicit worker request — the same bound
/// Context::from_env validates against, so a value that parses is a
/// value that is honored.  Explicit widths above the hardware width are
/// allowed (deliberate oversubscription, and the escape hatch for
/// hosts where hardware_concurrency() misreports 0); the ceiling only
/// stops a pathological budget from spawning unbounded OS threads.
inline constexpr int kMaxWorkerWidth = 4096;

/// Resolve a requested worker width: <= 0 means "all hardware threads";
/// explicit requests are honored up to kMaxWorkerWidth.
[[nodiscard]] inline int resolve_width(int width) noexcept {
  return width <= 0 ? hardware_width()
                    : (width < kMaxWorkerWidth ? width : kMaxWorkerWidth);
}

namespace detail {

/// True on a thread currently executing pool work — parallel_for from
/// inside a parallel region runs serially instead of deadlocking.
[[nodiscard]] bool in_parallel_region() noexcept;

/// Dispatch [begin, end) in chunks of `chunk` across the pool with the
/// given participant width; every participant (the calling thread
/// included) repeatedly steals the next chunk and calls
/// body(ctx, lo, hi).  Blocks until the whole range is done.
void pool_run(std::int64_t begin, std::int64_t end, std::int64_t chunk,
              void (*body)(const void*, std::int64_t, std::int64_t),
              const void* ctx, int width);

/// The serial path, isolated in its own never-inlined function with a
/// by-value closure: sharing a function body with the pool dispatch
/// (whose trampoline takes the closure's address) makes gcc spill the
/// captures to the stack throughout, measurably slowing the µs-scale
/// kernels.  Here the closure is a plain local — captures live in
/// registers, exactly as in a build with no threading at all.
template <typename Index, typename Fn>
[[gnu::noinline]] void serial_for(Index begin, Index end, Fn fn) {
  for (Index i = begin; i < end; ++i) fn(i);
}

}  // namespace detail

/// parallel_for(width, begin, end, fn): run fn(i) for i in [begin, end)
/// across at most `width` workers (0 = hardware width; 1 = pure serial,
/// never touching the pool — µs-scale kernels under a 1-thread Context
/// pay nothing for the machinery).  `fn` must be safe to run
/// concurrently for distinct i (the B2SR kernels write disjoint output
/// rows per tile-row, matching the one-warp-per-tile-row mapping of the
/// paper).
template <typename Index, typename Fn>
void parallel_for(int width, Index begin, Index end, Fn&& fn) {
  if (end <= begin) return;
  using F = std::decay_t<Fn>;
  if (resolve_width(width) > 1 && !detail::in_parallel_region()) {
    detail::pool_run(
        static_cast<std::int64_t>(begin), static_cast<std::int64_t>(end), 64,
        [](const void* ctx, std::int64_t lo, std::int64_t hi) {
          const F& f = *static_cast<const F*>(ctx);
          for (std::int64_t i = lo; i < hi; ++i) f(static_cast<Index>(i));
        },
        &fn, resolve_width(width));
    return;
  }
  detail::serial_for(begin, end, F(fn));
}

/// Hardware-width convenience overload (for callers with no Context —
/// corpus generation, gold references, one-off tooling).
template <typename Index, typename Fn>
void parallel_for(Index begin, Index end, Fn&& fn) {
  parallel_for(0, begin, end, std::forward<Fn>(fn));
}

/// parallel_for with a static schedule — for uniform per-iteration work
/// (e.g. packing kernels) where dynamic scheduling would only add
/// overhead.  With the chunk-stealing pool this is the same dispatch
/// with one contiguous chunk per worker.
template <typename Index, typename Fn>
void parallel_for_static(int width, Index begin, Index end, Fn&& fn) {
  if (end <= begin) return;
  using F = std::decay_t<Fn>;
  const int nthreads = resolve_width(width);
  if (nthreads > 1 && !detail::in_parallel_region()) {
    const auto b = static_cast<std::int64_t>(begin);
    const auto e = static_cast<std::int64_t>(end);
    const std::int64_t chunk = (e - b + nthreads - 1) / nthreads;
    detail::pool_run(
        b, e, chunk,
        [](const void* ctx, std::int64_t lo, std::int64_t hi) {
          const F& f = *static_cast<const F*>(ctx);
          for (std::int64_t i = lo; i < hi; ++i) f(static_cast<Index>(i));
        },
        &fn, nthreads);
    return;
  }
  detail::serial_for(begin, end, F(fn));
}

template <typename Index, typename Fn>
void parallel_for_static(Index begin, Index end, Fn&& fn) {
  parallel_for_static(0, begin, end, std::forward<Fn>(fn));
}

/// Exclusive prefix sum over per-chunk counts: out[0] = 0,
/// out[i + 1] = counts[0] + ... + counts[i]; `out` must hold n + 1
/// entries.  This is the tile_rowptr builder of the ingest pipeline
/// (csr2bsrNnz -> rowptr step): per-tile-row counts from the parallel
/// count pass become tile offsets.  Large inputs run the classic
/// three-phase block scan (parallel partial sums, serial block
/// offsets, parallel add-back); small ones fall back to the serial
/// scan that the three-phase version would only slow down.
template <typename T>
void parallel_exclusive_scan(int width, const T* counts, std::size_t n,
                             T* out) {
  out[0] = T{0};
  constexpr std::size_t kSerialCutoff = 1 << 15;
  const int nthreads = resolve_width(width);
  if (n >= kSerialCutoff && nthreads > 1) {
    const auto nblocks = static_cast<std::size_t>(nthreads);
    const std::size_t block = (n + nblocks - 1) / nblocks;
    std::vector<T> block_sum(nblocks, T{0});
    parallel_for_static(nthreads, std::size_t{0}, nblocks, [&](std::size_t b) {
      const std::size_t lo = b * block;
      const std::size_t hi = std::min(n, lo + block);
      T sum{0};
      for (std::size_t i = lo; i < hi; ++i) sum += counts[i];
      block_sum[b] = sum;
    });
    std::vector<T> block_off(nblocks, T{0});
    for (std::size_t b = 1; b < nblocks; ++b) {
      block_off[b] = block_off[b - 1] + block_sum[b - 1];
    }
    parallel_for_static(nthreads, std::size_t{0}, nblocks, [&](std::size_t b) {
      const std::size_t lo = b * block;
      const std::size_t hi = std::min(n, lo + block);
      T run = block_off[b];
      for (std::size_t i = lo; i < hi; ++i) {
        run += counts[i];
        out[i + 1] = run;
      }
    });
    return;
  }
  for (std::size_t i = 0; i < n; ++i) out[i + 1] = out[i] + counts[i];
}

/// Atomic float min on a shared cell (atomicMin analog for the sub-warp
/// tile variants, paper §V SSSP/CC).  Implemented as a CAS loop because
/// C++ has no atomic float min.
void atomic_min_float(float* cell, float v) noexcept;

/// Atomic float add on a shared cell (atomicAdd analog, paper §V PR/TC).
void atomic_add_float(float* cell, float v) noexcept;

/// Atomic OR on a packed bit-vector word (frontier updates).
void atomic_or_u32(std::uint32_t* cell, std::uint32_t v) noexcept;

/// Atomic OR on any packing word (uint8/16/32) — the push-mode boolean
/// vxm scatters frontier words into the output, and distinct tile-rows
/// may hit the same output word concurrently.  `concurrent` is whether
/// the surrounding parallel region actually runs more than one worker;
/// a serial region has no concurrency, so the plain RMW is safe and
/// skips the lock prefix.
template <typename W>
void atomic_or_word(W* cell, W v, bool concurrent) noexcept {
  if (concurrent) {
    std::atomic_ref<W> ref(*cell);
    ref.fetch_or(v, std::memory_order_relaxed);
  } else {
    *cell = static_cast<W>(*cell | v);
  }
}

}  // namespace bitgb
