// Shared-memory parallel runtime.
//
// The paper maps one tile-row to one warp and lets the SM scheduler run
// up to 64 warps concurrently (§IV, warp-consolidation model).  The host
// analog is a parallel loop over tile rows.  All kernels parallelize
// through this header so the device profile (thread count) is applied
// uniformly and so builds without OpenMP still work (they run serially).
#pragma once

#include <atomic>
#include <cstdint>

#if defined(_OPENMP)
#include <omp.h>
#endif

namespace bitgb {

/// Number of worker threads the runtime would use right now.
[[nodiscard]] inline int max_threads() noexcept {
#if defined(_OPENMP)
  return omp_get_max_threads();
#else
  return 1;
#endif
}

/// Set the worker-thread count for subsequent parallel_for calls.
/// Device profiles (device_profile.hpp) call this; 0 means "leave as is".
inline void set_threads(int n) noexcept {
#if defined(_OPENMP)
  if (n > 0) omp_set_num_threads(n);
#else
  (void)n;
#endif
}

/// parallel_for(begin, end, fn): run fn(i) for i in [begin, end) across
/// the worker threads.  `fn` must be safe to run concurrently for
/// distinct i (the B2SR kernels write disjoint output rows per tile-row,
/// matching the one-warp-per-tile-row mapping of the paper).
template <typename Index, typename Fn>
void parallel_for(Index begin, Index end, Fn&& fn) {
  if (end <= begin) return;
#if defined(_OPENMP)
  const std::int64_t b = static_cast<std::int64_t>(begin);
  const std::int64_t e = static_cast<std::int64_t>(end);
#pragma omp parallel for schedule(dynamic, 64)
  for (std::int64_t i = b; i < e; ++i) {
    fn(static_cast<Index>(i));
  }
#else
  for (Index i = begin; i < end; ++i) fn(i);
#endif
}

/// parallel_for with a static schedule — for uniform per-iteration work
/// (e.g. packing kernels) where dynamic scheduling would only add
/// overhead.
template <typename Index, typename Fn>
void parallel_for_static(Index begin, Index end, Fn&& fn) {
  if (end <= begin) return;
#if defined(_OPENMP)
  const std::int64_t b = static_cast<std::int64_t>(begin);
  const std::int64_t e = static_cast<std::int64_t>(end);
#pragma omp parallel for schedule(static)
  for (std::int64_t i = b; i < e; ++i) {
    fn(static_cast<Index>(i));
  }
#else
  for (Index i = begin; i < end; ++i) fn(i);
#endif
}

/// Atomic float min on a shared cell (atomicMin analog for the sub-warp
/// tile variants, paper §V SSSP/CC).  Implemented as a CAS loop because
/// OpenMP has no atomic min.
void atomic_min_float(float* cell, float v) noexcept;

/// Atomic float add on a shared cell (atomicAdd analog, paper §V PR/TC).
void atomic_add_float(float* cell, float v) noexcept;

/// Atomic OR on a packed bit-vector word (frontier updates).
void atomic_or_u32(std::uint32_t* cell, std::uint32_t v) noexcept;

/// Atomic OR on any packing word (uint8/16/32) — the push-mode boolean
/// vxm scatters frontier words into the output, and distinct tile-rows
/// may hit the same output word concurrently.
template <typename W>
void atomic_or_word(W* cell, W v) noexcept {
#if defined(_OPENMP)
  std::atomic_ref<W> ref(*cell);
  ref.fetch_or(v, std::memory_order_relaxed);
#else
  *cell = static_cast<W>(*cell | v);
#endif
}

}  // namespace bitgb
