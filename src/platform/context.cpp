#include "platform/context.hpp"

#include "platform/parallel.hpp"

#include <cstdlib>
#include <stdexcept>
#include <string>

namespace bitgb {

namespace {

[[noreturn]] void bad_env(const char* var, const char* value,
                          const char* expected) {
  throw std::invalid_argument(std::string(var) + "=\"" + value +
                              "\": expected " + expected);
}

}  // namespace

Context Context::from_env() {
  Context ctx;
  // The getenv calls below are the library's ONE environment seam (the
  // lint_invariants.py getenv-confinement rule pins them to this file);
  // nothing concurrently calls setenv, so the mt-unsafe findings are
  // excused here and nowhere else.
  // NOLINTNEXTLINE(concurrency-mt-unsafe)
  if (const char* e = std::getenv("BITGB_KERNEL_VARIANT")) {
    if (!parse_kernel_variant(e, ctx.variant)) {
      bad_env("BITGB_KERNEL_VARIANT", e, "scalar|simd|auto");
    }
  }
  // NOLINTNEXTLINE(concurrency-mt-unsafe)
  if (const char* e = std::getenv("BITGB_THREADS")) {
    char* end = nullptr;
    const long n = std::strtol(e, &end, 10);
    if (end == e || *end != '\0' || n < 1 || n > kMaxWorkerWidth) {
      bad_env("BITGB_THREADS", e,
              ("an integer in [1, " + std::to_string(kMaxWorkerWidth) + "]")
                  .c_str());
    }
    ctx.threads = static_cast<int>(n);
  }
  // NOLINTNEXTLINE(concurrency-mt-unsafe)
  if (const char* e = std::getenv("BITGB_BACKEND")) {
    const std::string s(e);
    if (s == "bit") {
      ctx.backend = Backend::kBit;
    } else if (s == "reference") {
      ctx.backend = Backend::kReference;
    } else {
      bad_env("BITGB_BACKEND", e, "bit|reference");
    }
  }
  return ctx;
}

}  // namespace bitgb
