// Clang Thread Safety Analysis wrappers — compile-time locking proofs.
//
// Every lock-holding component in the tree uses these capability-
// annotated primitives instead of the raw std ones, so the locking
// discipline that TSan checks *dynamically* (one interleaving per run)
// is also proven *statically* on every clang build: a member annotated
// GUARDED_BY(mu) that is touched without holding `mu` is a compile
// error under -Werror=thread-safety, on every path, in every build.
//
// The wrappers are zero-cost shims over the std primitives (same
// layout, same calls, header-only); on compilers without the analysis
// (gcc) the attribute macros expand to nothing and the wrappers are
// bit-for-bit the std behavior.  test_thread_annotations proves the
// semantic parity; tools/check_thread_safety_negative.sh proves the
// analysis actually fires (an unguarded access must FAIL to compile
// under clang -Werror=thread-safety).
//
// Annotation cheat sheet (see BUILDING.md "Static analysis"):
//   GUARDED_BY(mu)   — data member: reads need mu held (shared ok),
//                      writes need it held exclusively
//   REQUIRES(mu)     — function: caller must already hold mu
//   ACQUIRE/RELEASE  — function: takes/drops mu itself
//   EXCLUDES(mu)     — function: caller must NOT hold mu (deadlock
//                      proof for self-locking public entry points)
//   NO_THREAD_SAFETY_ANALYSIS — audited escape hatch; every use in the
//                      tree carries a justification comment (the
//                      double-checked publication pattern, mostly)
#pragma once

#include <condition_variable>
#include <mutex>
#include <shared_mutex>

// The attribute macros follow the canonical clang mutex.h spelling.
// They are deliberately unprefixed (GUARDED_BY, not BITGB_GUARDED_BY):
// the annotations read as part of the language, and the names are the
// ones every reader of the clang docs already knows.
#if defined(__clang__) && !defined(SWIG)
#define BITGB_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define BITGB_THREAD_ANNOTATION(x)  // no-op: gcc/MSVC have no analysis
#endif

#define CAPABILITY(x) BITGB_THREAD_ANNOTATION(capability(x))
#define SCOPED_CAPABILITY BITGB_THREAD_ANNOTATION(scoped_lockable)
#define GUARDED_BY(x) BITGB_THREAD_ANNOTATION(guarded_by(x))
#define PT_GUARDED_BY(x) BITGB_THREAD_ANNOTATION(pt_guarded_by(x))
#define ACQUIRED_BEFORE(...) \
  BITGB_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define ACQUIRED_AFTER(...) \
  BITGB_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))
#define REQUIRES(...) \
  BITGB_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define REQUIRES_SHARED(...) \
  BITGB_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))
#define ACQUIRE(...) \
  BITGB_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define ACQUIRE_SHARED(...) \
  BITGB_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))
#define RELEASE(...) \
  BITGB_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define RELEASE_SHARED(...) \
  BITGB_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))
#define RELEASE_GENERIC(...) \
  BITGB_THREAD_ANNOTATION(release_generic_capability(__VA_ARGS__))
#define TRY_ACQUIRE(...) \
  BITGB_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
#define TRY_ACQUIRE_SHARED(...) \
  BITGB_THREAD_ANNOTATION(try_acquire_shared_capability(__VA_ARGS__))
#define EXCLUDES(...) BITGB_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
#define ASSERT_CAPABILITY(x) \
  BITGB_THREAD_ANNOTATION(assert_capability(x))
#define ASSERT_SHARED_CAPABILITY(x) \
  BITGB_THREAD_ANNOTATION(assert_shared_capability(x))
#define RETURN_CAPABILITY(x) BITGB_THREAD_ANNOTATION(lock_returned(x))
#define NO_THREAD_SAFETY_ANALYSIS \
  BITGB_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace bitgb {

/// std::mutex with the `capability` attribute: the handle GUARDED_BY
/// and REQUIRES refer to.  The method bodies call the raw std::mutex
/// (not each other), so the analysis of the wrapper itself stays
/// trivially consistent.
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() ACQUIRE() { m_.lock(); }
  void unlock() RELEASE() { m_.unlock(); }
  [[nodiscard]] bool try_lock() TRY_ACQUIRE(true) { return m_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex m_;
};

/// std::shared_mutex with the capability attribute: writers ACQUIRE,
/// readers ACQUIRE_SHARED — the analysis checks that guarded members
/// are only *written* under the exclusive mode.
class CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void lock() ACQUIRE() { m_.lock(); }
  void unlock() RELEASE() { m_.unlock(); }
  [[nodiscard]] bool try_lock() TRY_ACQUIRE(true) { return m_.try_lock(); }

  void lock_shared() ACQUIRE_SHARED() { m_.lock_shared(); }
  void unlock_shared() RELEASE_SHARED() { m_.unlock_shared(); }
  [[nodiscard]] bool try_lock_shared() TRY_ACQUIRE_SHARED(true) {
    return m_.try_lock_shared();
  }

 private:
  std::shared_mutex m_;
};

/// Scoped exclusive lock (std::lock_guard analog) over Mutex or
/// SharedMutex.  SCOPED_CAPABILITY makes the analysis track the held
/// region through early returns and exceptions exactly like the
/// destructor does.
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ACQUIRE(mu) : mu_(&mu), shared_(nullptr) {
    mu.lock();
  }
  explicit MutexLock(SharedMutex& mu) ACQUIRE(mu)
      : mu_(nullptr), shared_(&mu) {
    mu.lock();
  }
  ~MutexLock() RELEASE() {
    if (mu_ != nullptr) {
      mu_->unlock();
    } else {
      shared_->unlock();
    }
  }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  friend class CondVar;
  Mutex* mu_;
  SharedMutex* shared_;
};

/// Scoped shared (reader) lock over SharedMutex.
class SCOPED_CAPABILITY SharedLock {
 public:
  explicit SharedLock(SharedMutex& mu) ACQUIRE_SHARED(mu) : mu_(mu) {
    mu.lock_shared();
  }
  ~SharedLock() RELEASE() { mu_.unlock_shared(); }

  SharedLock(const SharedLock&) = delete;
  SharedLock& operator=(const SharedLock&) = delete;

 private:
  SharedMutex& mu_;
};

/// Condition variable bound to the annotated Mutex.  wait() REQUIRES
/// the mutex, so "waiting without the lock" — the classic lost-wakeup
/// bug — is a compile error.  Waits are spelled as explicit
/// while-loops at the call sites rather than predicate lambdas: the
/// analysis treats a lambda body as a separate function that holds
/// nothing, so a guarded read inside a wait-predicate would
/// false-positive.
///
/// Internally a std::condition_variable over the Mutex's std::mutex
/// (adopt/release around the wait), so the fast native wakeup path is
/// unchanged from the pre-annotation code.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically release `mu`, block, reacquire before returning.
  /// Caller must hold `mu` (checked), and as always may wake
  /// spuriously — loop on the condition.
  void wait(Mutex& mu) REQUIRES(mu) {
    std::unique_lock<std::mutex> lk(mu.m_, std::adopt_lock);
    cv_.wait(lk);
    lk.release();  // the caller's MutexLock still owns the mutex
  }

  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace bitgb
