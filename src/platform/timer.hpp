// Timing utilities and the kernel-vs-algorithm split.
//
// Tables VII/VIII of the paper report, per (matrix, algorithm), both the
// whole-algorithm latency and the latency spent inside the mxv/mxm
// kernels ("algorithm" vs "kernel" rows).  We reproduce that split with
// a thread-local accumulator that every backend kernel wraps in a
// KernelTimerScope; the harness reads and resets the accumulator around
// each run.  All reported numbers are averages of kRunsPerMeasurement
// runs, matching the paper's "average of 5 runs" protocol (§VI-A).
#pragma once

#include <chrono>
#include <cstdint>

namespace bitgb {

inline constexpr int kRunsPerMeasurement = 5;  ///< paper §VI-A protocol

/// Monotonic wall-clock stopwatch.
class Stopwatch {
 public:
  Stopwatch() : start_(clock::now()) {}
  void reset() { start_ = clock::now(); }
  /// Elapsed milliseconds since construction or the last reset().
  [[nodiscard]] double elapsed_ms() const {
    return std::chrono::duration<double, std::milli>(clock::now() - start_)
        .count();
  }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

/// Accumulated in-kernel time (milliseconds) on the calling thread since
/// the last reset.  Backend kernels contribute via KernelTimerScope.
[[nodiscard]] double kernel_time_ms();

/// Zero the kernel-time accumulator (harness calls this per run).
void reset_kernel_time();

/// RAII contribution of one kernel invocation to the accumulator.
/// Scopes may not nest meaningfully (a kernel does not call a kernel);
/// nesting double-counts by design simplicity and is avoided in code.
class KernelTimerScope {
 public:
  KernelTimerScope();
  ~KernelTimerScope();
  KernelTimerScope(const KernelTimerScope&) = delete;
  KernelTimerScope& operator=(const KernelTimerScope&) = delete;

 private:
  Stopwatch watch_;
};

/// Measure `fn` as the paper does: one warm-up call, then the average
/// wall-clock of kRunsPerMeasurement timed calls, in milliseconds.
template <typename Fn>
[[nodiscard]] double time_avg_ms(Fn&& fn, int runs = kRunsPerMeasurement) {
  fn();  // warm-up (the paper amortizes one-time effects, §III-B)
  Stopwatch w;
  for (int r = 0; r < runs; ++r) fn();
  return w.elapsed_ms() / runs;
}

/// Like time_avg_ms but also averages the in-kernel accumulator, for the
/// Tables VII/VIII "kernel" rows.  Returns {algorithm_ms, kernel_ms}.
struct SplitTiming {
  double algorithm_ms = 0.0;
  double kernel_ms = 0.0;
};

template <typename Fn>
[[nodiscard]] SplitTiming time_split_ms(Fn&& fn,
                                        int runs = kRunsPerMeasurement) {
  fn();  // warm-up
  SplitTiming t;
  for (int r = 0; r < runs; ++r) {
    reset_kernel_time();
    Stopwatch w;
    fn();
    t.algorithm_ms += w.elapsed_ms();
    t.kernel_ms += kernel_time_ms();
  }
  t.algorithm_ms /= runs;
  t.kernel_ms /= runs;
  return t;
}

}  // namespace bitgb
