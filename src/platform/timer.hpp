// Timing utilities and the kernel-vs-algorithm split.
//
// Tables VII/VIII of the paper report, per (matrix, algorithm), both the
// whole-algorithm latency and the latency spent inside the mxv/mxm
// kernels ("algorithm" vs "kernel" rows).  We reproduce that split with
// a caller-owned KernelTimeSink: a Context that wants the split points
// its `timer` at a sink, every backend operation contributes through a
// KernelTimerScope over that sink, and the harness reads/resets the
// sink around each run.  A null sink (the default Context) makes the
// scope a no-op — queries that don't measure pay nothing, and two
// concurrent queries accumulate into their own sinks instead of a
// process accumulator.  All reported numbers are averages of
// kRunsPerMeasurement runs, matching the paper's "average of 5 runs"
// protocol (§VI-A).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>

namespace bitgb {

inline constexpr int kRunsPerMeasurement = 5;  ///< paper §VI-A protocol

/// Monotonic wall-clock stopwatch.
class Stopwatch {
 public:
  Stopwatch() : start_(clock::now()) {}
  void reset() { start_ = clock::now(); }
  /// Elapsed milliseconds since construction or the last reset().
  [[nodiscard]] double elapsed_ms() const {
    return std::chrono::duration<double, std::milli>(clock::now() - start_)
        .count();
  }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

/// Accumulates in-kernel time for one measurement consumer.  Atomic so
/// kernels driven from different threads of one query (or one harness)
/// can share a sink; distinct queries simply use distinct sinks.
class KernelTimeSink {
 public:
  void add_ns(std::int64_t ns) noexcept {
    ns_.fetch_add(ns, std::memory_order_relaxed);
  }
  [[nodiscard]] double ms() const noexcept {
    return static_cast<double>(ns_.load(std::memory_order_relaxed)) * 1e-6;
  }
  void reset() noexcept { ns_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> ns_{0};
};

/// RAII contribution of one kernel invocation to a sink (no-op when the
/// sink is null).  Scopes may not nest meaningfully (a kernel does not
/// call a kernel); nesting double-counts by design simplicity and is
/// avoided in code.
class KernelTimerScope {
 public:
  explicit KernelTimerScope(KernelTimeSink* sink) : sink_(sink) {
    if (sink_ != nullptr) start_ = std::chrono::steady_clock::now();
  }
  ~KernelTimerScope() {
    if (sink_ != nullptr) {
      sink_->add_ns(std::chrono::duration_cast<std::chrono::nanoseconds>(
                        std::chrono::steady_clock::now() - start_)
                        .count());
    }
  }
  KernelTimerScope(const KernelTimerScope&) = delete;
  KernelTimerScope& operator=(const KernelTimerScope&) = delete;

 private:
  KernelTimeSink* sink_;
  std::chrono::steady_clock::time_point start_{};
};

/// Measure `fn` as the paper does: one warm-up call, then the average
/// wall-clock of kRunsPerMeasurement timed calls, in milliseconds.
template <typename Fn>
[[nodiscard]] double time_avg_ms(Fn&& fn, int runs = kRunsPerMeasurement) {
  fn();  // warm-up (the paper amortizes one-time effects, §III-B)
  Stopwatch w;
  for (int r = 0; r < runs; ++r) fn();
  return w.elapsed_ms() / runs;
}

/// Like time_avg_ms but also averages the given kernel-time sink, for
/// the Tables VII/VIII "kernel" rows.  The caller must run `fn` under a
/// Context whose `timer` points at `sink`.  Returns {algorithm_ms,
/// kernel_ms}.
struct SplitTiming {
  double algorithm_ms = 0.0;
  double kernel_ms = 0.0;
};

template <typename Fn>
[[nodiscard]] SplitTiming time_split_ms(KernelTimeSink& sink, Fn&& fn,
                                        int runs = kRunsPerMeasurement) {
  fn();  // warm-up
  SplitTiming t;
  for (int r = 0; r < runs; ++r) {
    sink.reset();
    Stopwatch w;
    fn();
    t.algorithm_ms += w.elapsed_ms();
    t.kernel_ms += sink.ms();
  }
  t.algorithm_ms /= runs;
  t.kernel_ms /= runs;
  return t;
}

}  // namespace bitgb
