// Device profiles — the two-GPU comparison substitute.
//
// The paper evaluates on a GTX 1080 (Pascal, 20 SMs, 320 GB/s) and a
// Titan V (Volta, 80 SMs, 653 GB/s): two points on a parallel-width /
// bandwidth axis (paper Table VI).  Without GPUs we reproduce the same
// axis with two host execution profiles that differ in worker-thread
// count: "pascal-analog" (1 thread) and "volta-analog" (all cores).
// Figures 6 vs 7 and Tables VII vs VIII are regenerated once per profile.
//
// What this substitution preserves: how the B2SR-vs-CSR gap responds to
// more parallel resources (both sides scale, so relative speedups are
// comparable across profiles, as in the paper).  What it cannot
// reproduce: Volta's independent-thread-scheduling cost on __shfl_sync /
// __ballot_sync that the paper cites for its slightly lower bit-kernel
// gains on Volta (§VI-E, last paragraph); EXPERIMENTS.md notes this.
//
// Profiles also carry the kernel variant (scalar vs SIMD inner loops,
// platform/simd.hpp).  A profile no longer *activates* anything — it is
// descriptor material: context_for() turns one into a bitgb::Context
// the benches thread through every call, which is how they ablate the
// SIMD engine on identical inputs without mutating process state.  The
// SIMD backend itself is CPUID-verified at runtime; simd_summary()
// reports what this host runs.
#pragma once

#include "platform/context.hpp"
#include "platform/simd.hpp"

#include <string>
#include <vector>

namespace bitgb {

struct DeviceProfile {
  std::string name;        ///< e.g. "pascal-analog"
  std::string paper_gpu;   ///< the GPU this profile stands in for
  int num_threads = 1;     ///< host worker threads while active
  /// Kernel variant the profile pins (kAuto = per-kernel table).
  KernelVariant variant = KernelVariant::kAuto;
};

/// The GTX 1080 stand-in: minimum parallel width.
[[nodiscard]] DeviceProfile pascal_analog();

/// The Titan V stand-in: full parallel width of the host.
[[nodiscard]] DeviceProfile volta_analog();

/// All profiles, in paper order (Pascal first).
[[nodiscard]] std::vector<DeviceProfile> all_profiles();

/// Copy of `p` pinned to the given kernel variant, named
/// "<name>+scalar" / "<name>+simd" — the ablation axis of the kernel
/// micro-bench.
[[nodiscard]] DeviceProfile with_variant(DeviceProfile p, KernelVariant v);

/// The execution Context a profile describes: its thread width and
/// kernel variant, optionally wired to a timer sink.  Benches pass the
/// result (with the backend of their choice) through every call.
[[nodiscard]] Context context_for(const DeviceProfile& p,
                                  KernelTimeSink* sink = nullptr);

/// One-line description of the host's SIMD state, e.g.
/// "simd engine: avx2 (runtime-verified)" — printed by the bench
/// harnesses so recorded numbers carry their provenance.
[[nodiscard]] std::string simd_summary();

}  // namespace bitgb
