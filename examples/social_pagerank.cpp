// Social-network PageRank: the workload class the paper's introduction
// motivates (large, scale-free, homogeneous graphs).
//
// Builds an RMAT power-law graph, runs PageRank on both backends with
// the paper's parameters (10 iterations, alpha 0.85), verifies they
// agree, and reports the top-10 ranked vertices plus the backend
// latency comparison.
#include "algorithms/pagerank.hpp"
#include "graphblas/graph.hpp"
#include "platform/context.hpp"
#include "platform/timer.hpp"
#include "sparse/generators.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <numeric>
#include <vector>

int main() {
  using namespace bitgb;

  // Scale-free "social" graph: 2^13 users, ~120k follows.
  const Coo follows = gen_rmat(/*scale=*/13, /*nnz_target=*/120000,
                               /*seed=*/7);
  gb::GraphOptions opts;
  opts.symmetrize = false;  // follows are directed
  const gb::Graph g = gb::Graph::from_coo(follows, opts);
  std::printf("social graph: %d users, %lld follow edges, tile %dx%d\n",
              g.num_vertices(), static_cast<long long>(g.num_edges()),
              g.tile_dim(), g.tile_dim());

  // PageRank on both backends (paper parameters are the defaults).
  // Each run carries its own Context: backend choice plus a kernel-time
  // sink for the algorithm/kernel split.
  KernelTimeSink sink;
  const Context ref_ctx =
      Context{}.with_backend(Backend::kReference).with_timer(&sink);
  const Context bit_ctx = ref_ctx.with_backend(Backend::kBit);
  const auto t_ref =
      time_split_ms(sink, [&] { (void)algo::pagerank(ref_ctx, g); });
  const auto t_bit =
      time_split_ms(sink, [&] { (void)algo::pagerank(bit_ctx, g); });

  const auto ref = algo::pagerank(ref_ctx, g);
  const auto bit = algo::pagerank(bit_ctx, g);

  double max_diff = 0.0;
  for (std::size_t i = 0; i < ref.rank.size(); ++i) {
    max_diff = std::max(
        max_diff, std::abs(static_cast<double>(ref.rank[i] - bit.rank[i])));
  }
  std::printf("backends agree within %.2e (max |Δrank|)\n", max_diff);
  std::printf("reference-csr: %7.3f ms (kernel %7.3f ms)\n",
              t_ref.algorithm_ms, t_ref.kernel_ms);
  std::printf("bit-b2sr:      %7.3f ms (kernel %7.3f ms)\n",
              t_bit.algorithm_ms, t_bit.kernel_ms);

  // Top-10 influencers.
  std::vector<vidx_t> order(ref.rank.size());
  std::iota(order.begin(), order.end(), vidx_t{0});
  std::partial_sort(order.begin(), order.begin() + 10, order.end(),
                    [&](vidx_t a, vidx_t b) {
                      return bit.rank[static_cast<std::size_t>(a)] >
                             bit.rank[static_cast<std::size_t>(b)];
                    });
  std::printf("\ntop-10 by PageRank:\n");
  for (int i = 0; i < 10; ++i) {
    const vidx_t v = order[static_cast<std::size_t>(i)];
    std::printf("  #%2d vertex %6d  rank %.6f  out-degree %d\n", i + 1, v,
                bit.rank[static_cast<std::size_t>(v)],
                g.degrees()[static_cast<std::size_t>(v)]);
  }
  return 0;
}
