// Triangle census: masked bit-SpGEMM (the paper's TC algorithm, §V)
// across graphs with very different triangle structure, with the
// float-CSR framework baseline for comparison.
#include "algorithms/tc.hpp"
#include "graphblas/graph.hpp"
#include "platform/context.hpp"
#include "platform/timer.hpp"
#include "sparse/generators.hpp"

#include <cstdio>
#include <string>
#include <vector>

int main() {
  using namespace bitgb;

  struct Case {
    std::string name;
    Coo edges;
  };
  std::vector<Case> cases;
  cases.push_back({"clique-chain (many triangles)",
                   gen_chain_of_cliques(128, 12, 1)});
  cases.push_back({"social rmat", gen_rmat(12, 80000, 2)});
  cases.push_back({"mycielskian11 (triangle-free)", gen_mycielskian(11)});
  cases.push_back({"grid city (4-cycles only)", gen_road(64, 64, 0.0, 3)});

  const Context bit_ctx;
  const Context ref_ctx = bit_ctx.with_backend(Backend::kReference);
  std::printf("%-32s %12s %12s %12s %9s\n", "graph", "triangles",
              "ref (ms)", "bit (ms)", "speedup");
  for (const auto& c : cases) {
    const gb::Graph g = gb::Graph::from_coo(c.edges);
    const auto count_bit = algo::triangle_count(bit_ctx, g);
    const auto count_ref = algo::triangle_count(ref_ctx, g);
    if (count_bit != count_ref) {
      std::printf("MISMATCH on %s: bit %lld ref %lld\n", c.name.c_str(),
                  static_cast<long long>(count_bit),
                  static_cast<long long>(count_ref));
      return 1;
    }
    const double t_ref = time_avg_ms(
        [&] { (void)algo::triangle_count(ref_ctx, g); });
    const double t_bit = time_avg_ms(
        [&] { (void)algo::triangle_count(bit_ctx, g); });
    std::printf("%-32s %12lld %12.3f %12.3f %8.1fx\n", c.name.c_str(),
                static_cast<long long>(count_bit), t_ref, t_bit,
                t_bit > 0 ? t_ref / t_bit : 0.0);
  }
  return 0;
}
