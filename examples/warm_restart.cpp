// Warm restart: a serving registry that survives its own process.
//
//   $ ./warm_restart
//
// Act one builds a three-graph GraphRegistry, serves a batch of
// queries through a Server, and records every answer.  Act two
// persists the whole registry — one checksummed snapshot per graph
// (carrying the prewarmed B2SR/CSR caches) plus an atomically-written
// manifest — then throws the registry and server away: the "crash".
// Act three is the restart: a FRESH registry replays the manifest with
// recover(), a fresh Server serves the SAME queries, and every answer
// is verified bit-identical against act one.  No MatrixMarket
// re-parse, no re-pack, no re-prewarm — the snapshot load IS the
// warm-up.
//
// The demo also corrupts one snapshot in place and recovers again, to
// show quarantine: the damaged graph is reported and skipped, the
// intact ones still come back, and nothing crashes.
#include "graphblas/graph.hpp"
#include "platform/timer.hpp"
#include "serving/server.hpp"
#include "sparse/generators.hpp"

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <future>
#include <memory>
#include <string>
#include <vector>

int main() {
  using namespace bitgb;
  using serving::QueryKind;
  using serving::Reply;
  using serving::Server;
  using serving::Status;

  namespace fs = std::filesystem;
  const fs::path dir = fs::temp_directory_path() / "bitgb-warm-restart";
  fs::remove_all(dir);
  fs::create_directories(dir);

  const char* names[] = {"social", "mesh", "roads"};
  const auto queries = [] {
    std::vector<std::pair<int, vidx_t>> q;  // (graph index, source)
    for (int i = 0; i < 96; ++i) {
      q.emplace_back(i % 3, static_cast<vidx_t>((i * 37) % 512));
    }
    return q;
  }();

  // --- Act one: build, prewarm, serve, remember the answers ----------
  auto registry = std::make_unique<serving::GraphRegistry>();
  registry->add(names[0], gb::Graph::from_coo(gen_rmat(10, 8192, 3)));
  registry->add(names[1], gb::Graph::from_coo(gen_hybrid(1024, 4)));
  registry->add(names[2], gb::Graph::from_coo(gen_road(32, 32, 0.02, 5)));

  std::vector<std::vector<std::int32_t>> before;
  {
    Server server(*registry);
    std::vector<std::future<Reply>> futs;
    for (const auto& [gi, src] : queries) {
      futs.push_back(server.submit(names[gi], QueryKind::kBfs, src));
    }
    for (auto& f : futs) {
      Reply r = f.get();
      if (r.status != Status::kOk) {
        std::fprintf(stderr, "act one shed a query\n");
        return 1;
      }
      before.push_back(std::move(r.levels));
    }
    server.shutdown();
    std::printf("act 1: served %zu BFS queries across %zu graphs\n",
                before.size(), registry->size());
  }

  // --- Act two: persist, then "crash" --------------------------------
  Stopwatch save_watch;
  registry->save_all(dir.string());
  std::printf("act 2: saved %zu graphs + manifest to %s in %.1f ms\n",
              registry->size(), dir.c_str(), save_watch.elapsed_ms());
  registry.reset();  // the process "dies": every in-memory graph is gone

  // --- Act three: recover and verify bit-identity --------------------
  auto restarted = std::make_unique<serving::GraphRegistry>();
  Stopwatch recover_watch;
  const auto report = restarted->recover(dir.string());
  std::printf("act 3: recovered %zu/%zu graphs in %.1f ms\n",
              report.recovered(), report.entries.size(),
              recover_watch.elapsed_ms());
  for (const auto& e : report.entries) {
    std::printf("  %-8s %s  (%s)\n", e.name.c_str(),
                serving::recovery_status_name(e.status),
                e.file.c_str());
  }
  if (report.recovered() != 3 || restarted->size() != 3) {
    std::fprintf(stderr, "recovery did not restore every graph\n");
    return 1;
  }

  {
    Server server(*restarted);
    std::vector<std::future<Reply>> futs;
    for (const auto& [gi, src] : queries) {
      futs.push_back(server.submit(names[gi], QueryKind::kBfs, src));
    }
    for (std::size_t i = 0; i < futs.size(); ++i) {
      Reply r = futs[i].get();
      if (r.status != Status::kOk || r.levels != before[i]) {
        std::fprintf(stderr, "answer %zu differs after recovery\n", i);
        return 1;
      }
    }
    server.shutdown();
    const auto st = server.stats();
    std::printf("        %llu answers verified bit-identical "
                "(graphs_recovered=%llu, quarantined=%llu)\n",
                static_cast<unsigned long long>(st.completed),
                static_cast<unsigned long long>(st.graphs_recovered),
                static_cast<unsigned long long>(st.graphs_quarantined));
  }

  // --- Encore: corruption is contained, not fatal --------------------
  // Flip one byte of the first snapshot file; the checksummed loader
  // quarantines it and everything else still recovers.
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (entry.path().extension() != ".bgbs") continue;
    std::fstream f(entry.path(),
                   std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(100);
    char b;
    f.seekg(100);
    f.get(b);
    f.seekp(100);
    f.put(static_cast<char>(b ^ 0x20));
    break;
  }
  serving::GraphRegistry after_corruption;
  const auto report2 = after_corruption.recover(dir.string());
  std::printf("encore: after corrupting one file, recovered %zu and "
              "quarantined %zu\n",
              report2.recovered(), report2.quarantined());
  if (report2.quarantined() == 0 ||
      report2.recovered() + report2.quarantined() != report2.entries.size()) {
    std::fprintf(stderr, "quarantine did not behave as expected\n");
    return 1;
  }

  fs::remove_all(dir);
  std::printf("warm restart verified: snapshots + manifest + quarantine\n");
  return 0;
}
