// Format advisor: the paper's §III-C user workflow.
//
// Given a matrix — a Matrix Market file path, or a built-in demo set —
// run the sampling profiler (Algorithm 1), print the estimated
// compression per tile size next to the exact numbers, and recommend
// whether and how to convert to B2SR.
//
//   $ ./format_advisor                # demo matrices
//   $ ./format_advisor graph.mtx     # your own matrix
//   $ ./format_advisor graph.mtx 128 # with 128 sampled rows
#include "core/sampling.hpp"
#include "core/stats.hpp"
#include "platform/timer.hpp"
#include "sparse/convert.hpp"
#include "sparse/generators.hpp"
#include "sparse/matrix_market.hpp"

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

namespace {

void advise(const std::string& name, const bitgb::Csr& m,
            bitgb::vidx_t sample_rows) {
  using namespace bitgb;
  std::printf("=== %s: %d x %d, %lld nonzeros, density %.2e ===\n",
              name.c_str(), m.nrows, m.ncols,
              static_cast<long long>(m.nnz()), m.density());

  Stopwatch sw;
  const SamplingProfile prof = sample_profile(m, sample_rows, 0xAD71CE);
  const double est_ms = sw.elapsed_ms();
  sw.reset();
  const auto exact = all_footprints(m);
  const double exact_ms = sw.elapsed_ms();

  std::printf("%-8s %16s %16s\n", "tile", "estimated", "exact");
  for (int i = 0; i < kNumTileDims; ++i) {
    const auto& e = prof.per_dim[static_cast<std::size_t>(i)];
    const auto& x = exact[static_cast<std::size_t>(i)];
    std::printf("%2dx%-5d %15.1f%% %15.1f%%\n", e.dim, e.dim,
                e.est_compression_pct, x.compression_pct);
  }
  std::printf("sampled %d rows in %.2f ms (exact packing took %.2f ms)\n",
              prof.rows_sampled, est_ms, exact_ms);
  if (prof.worth_converting()) {
    std::printf("-> convert to B2SR-%d\n\n", prof.recommended_dim());
  } else {
    std::printf("-> stay on CSR (no tile size compresses this pattern)\n\n");
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace bitgb;
  const vidx_t sample_rows =
      argc > 2 ? static_cast<vidx_t>(std::atoi(argv[2])) : 256;

  if (argc > 1) {
    try {
      const Coo edges = read_matrix_market_file(argv[1]);
      advise(argv[1], coo_to_csr(pattern_of(edges)), sample_rows);
    } catch (const MatrixMarketError& e) {
      std::fprintf(stderr, "error reading %s: %s\n", argv[1], e.what());
      return 1;
    }
    return 0;
  }

  // Demo: one matrix per pattern category.
  advise("diagonal band", coo_to_csr(gen_banded(2048, 12, 0.8, 1)),
         sample_rows);
  advise("random scatter", coo_to_csr(gen_random(2048, 8192, 2)),
         sample_rows);
  advise("blocks", coo_to_csr(gen_block(2048, 64, 16, 0.5, 3, true)),
         sample_rows);
  advise("road grid", coo_to_csr(gen_road(45, 45, 0.02, 4)), sample_rows);
  return 0;
}
