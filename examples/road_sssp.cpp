// Road-network shortest paths: SSSP and connectivity on a planar grid
// with a few long-range shortcuts — the "road" pattern category of the
// paper's Table V.
//
// Runs SSSP (min-plus semiring) and connected components on both
// backends, checks agreement, and prints a distance histogram.
#include "algorithms/cc.hpp"
#include "algorithms/sssp.hpp"
#include "graphblas/graph.hpp"
#include "platform/context.hpp"
#include "platform/timer.hpp"
#include "sparse/generators.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>
#include <vector>

int main() {
  using namespace bitgb;

  // 96x96 grid city, 2% of streets rewired as highways.
  const Coo roads = gen_road(96, 96, /*rewire=*/0.02, /*seed=*/11);
  const gb::Graph g = gb::Graph::from_coo(roads);
  std::printf("road network: %d intersections, %lld road segments\n",
              g.num_vertices(), static_cast<long long>(g.num_edges()));

  KernelTimeSink sink;
  const Context bit_ctx = Context{}.with_timer(&sink);
  const Context ref_ctx = bit_ctx.with_backend(Backend::kReference);

  // Connectivity first: rewiring can strand intersections.
  const auto cc = algo::connected_components(bit_ctx, g);
  std::map<vidx_t, int> comp_sizes;
  for (const vidx_t c : cc.component) ++comp_sizes[c];
  std::printf("connected components: %zu (largest %d vertices)\n",
              comp_sizes.size(),
              std::max_element(comp_sizes.begin(), comp_sizes.end(),
                               [](const auto& a, const auto& b) {
                                 return a.second < b.second;
                               })
                  ->second);

  // SSSP from the city centre on both backends.
  const vidx_t centre = 96 * 48 + 48;
  const auto t_ref = time_split_ms(
      sink, [&] { (void)algo::sssp(ref_ctx, g, {centre}); });
  const auto t_bit = time_split_ms(
      sink, [&] { (void)algo::sssp(bit_ctx, g, {centre}); });
  const auto ref = algo::sssp(ref_ctx, g, {centre});
  const auto bit = algo::sssp(bit_ctx, g, {centre});

  for (std::size_t i = 0; i < ref.dist.size(); ++i) {
    if (ref.dist[i] != bit.dist[i] &&
        !(std::isinf(ref.dist[i]) && std::isinf(bit.dist[i]))) {
      std::printf("MISMATCH at %zu: ref %f bit %f\n", i, ref.dist[i],
                  bit.dist[i]);
      return 1;
    }
  }
  std::printf("backends agree on all %zu distances\n", ref.dist.size());
  std::printf("reference-csr: %7.3f ms (kernel %7.3f ms), %d rounds\n",
              t_ref.algorithm_ms, t_ref.kernel_ms, ref.iterations);
  std::printf("bit-b2sr:      %7.3f ms (kernel %7.3f ms)\n",
              t_bit.algorithm_ms, t_bit.kernel_ms);

  // Histogram of hop distances in buckets of 8.
  std::map<int, int> hist;
  int unreachable = 0;
  for (const value_t d : bit.dist) {
    if (std::isinf(d)) {
      ++unreachable;
    } else {
      ++hist[static_cast<int>(d) / 8];
    }
  }
  std::printf("\nhop-distance histogram from centre (buckets of 8):\n");
  for (const auto& [bucket, count] : hist) {
    std::printf("  %3d-%3d: %5d %s\n", bucket * 8, bucket * 8 + 7, count,
                std::string(static_cast<std::size_t>(count) / 64, '#').c_str());
  }
  if (unreachable > 0) std::printf("  unreachable: %d\n", unreachable);
  return 0;
}
