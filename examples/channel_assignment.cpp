// Channel assignment via graph coloring — the max-times-semiring
// algorithms of paper Table IV (MIS, graph coloring) on an
// interference graph: transmitters within range interfere and must get
// different channels; a maximal independent set gives one interference-
// free broadcast group.
#include "algorithms/coloring.hpp"
#include "algorithms/mis.hpp"
#include "graphblas/graph.hpp"
#include "platform/context.hpp"
#include "platform/timer.hpp"
#include "sparse/generators.hpp"

#include <cstdio>
#include <map>

int main() {
  using namespace bitgb;

  // Interference graph: a city grid of transmitters, each interfering
  // with its planar neighbours plus a band of nearby towers.
  const Coo interference = gen_banded(4096, 6, 0.85, 23);
  const gb::Graph g = gb::Graph::from_coo(interference);
  std::printf("interference graph: %d transmitters, %lld conflicts, "
              "tile %dx%d\n",
              g.num_vertices(), static_cast<long long>(g.num_edges() / 2),
              g.tile_dim(), g.tile_dim());

  const Context bit_ctx;  // seed for the Luby priorities rides in here
  const Context ref_ctx = bit_ctx.with_backend(Backend::kReference);

  // One interference-free broadcast group (MIS).
  const auto mis = algo::maximal_independent_set(bit_ctx, g);
  if (!algo::is_valid_mis(g.adjacency(), mis.in_set)) {
    std::printf("invalid MIS!\n");
    return 1;
  }
  int group = 0;
  for (const auto b : mis.in_set) group += b;
  std::printf("broadcast group: %d transmitters simultaneously "
              "(%d Luby rounds)\n",
              group, mis.rounds);

  // Full channel plan (coloring), both backends must agree.
  const auto t_ref = time_avg_ms(
      [&] { (void)algo::greedy_coloring(ref_ctx, g); });
  const auto t_bit = time_avg_ms(
      [&] { (void)algo::greedy_coloring(bit_ctx, g); });
  const auto plan = algo::greedy_coloring(bit_ctx, g);
  if (!algo::is_valid_coloring(g.adjacency(), plan.color)) {
    std::printf("invalid coloring!\n");
    return 1;
  }

  std::map<std::int32_t, int> channel_load;
  for (const auto c : plan.color) ++channel_load[c];
  std::printf("channel plan: %d channels (max degree bound: %d)\n",
              plan.num_colors, [&] {
                vidx_t d = 0;
                for (const auto x : g.degrees()) d = std::max(d, x);
                return d + 1;
              }());
  std::printf("reference backend: %7.3f ms, bit backend: %7.3f ms\n", t_ref,
              t_bit);
  std::printf("\nbusiest channels:\n");
  int shown = 0;
  for (const auto& [c, load] : channel_load) {
    if (shown++ >= 5) break;
    std::printf("  channel %2d -> %4d transmitters\n", c, load);
  }
  return 0;
}
