// Quickstart: build a graph, pack it into B2SR, run BFS on the bit
// backend, and inspect the storage savings.
//
//   $ ./quickstart
//
// This is the smallest end-to-end tour of the public API:
//   generators -> Graph::from_coo -> algo::bfs -> core::stats.
#include "algorithms/bfs.hpp"
#include "core/stats.hpp"
#include "graphblas/graph.hpp"
#include "sparse/generators.hpp"

#include <cstdio>

int main() {
  using namespace bitgb;

  // 1. A graph: 64x64 grid road network (4096 vertices).
  const Coo edges = gen_road(64, 64, /*rewire=*/0.01, /*seed=*/42);

  // 2. Wrap it.  GraphOptions{} picks the B2SR tile size automatically
  //    with the sampling profiler (paper Algorithm 1).
  const gb::Graph g = gb::Graph::from_coo(edges);
  std::printf("graph: %d vertices, %lld edges, auto tile size %dx%d\n",
              g.num_vertices(), static_cast<long long>(g.num_edges()),
              g.tile_dim(), g.tile_dim());

  // 3. Storage: B2SR vs 32-bit float CSR (the paper's §VI-B metric).
  const auto fps = all_footprints(g.adjacency());
  std::printf("\n%-8s %14s %16s\n", "tile", "B2SR bytes", "vs float CSR");
  for (const auto& fp : fps) {
    std::printf("%2dx%-5d %14zu %15.1f%%\n", fp.dim, fp.dim, fp.b2sr_bytes,
                fp.compression_pct);
  }

  // 4. BFS from vertex 0 on the bit backend.
  const auto res = algo::bfs(g, /*source=*/0, gb::Backend::kBit);
  int reached = 0;
  int max_level = 0;
  for (const auto lvl : res.levels) {
    if (lvl != algo::kUnreached) {
      ++reached;
      max_level = std::max(max_level, static_cast<int>(lvl));
    }
  }
  std::printf("\nBFS from 0: reached %d/%d vertices in %d iterations "
              "(eccentricity %d)\n",
              reached, g.num_vertices(), res.iterations, max_level);
  return 0;
}
