// Quickstart: the smallest end-to-end tour of the public API.
//
//   $ ./quickstart
//
// The three nouns of the API:
//   * Graph     — a lazy, thread-safe multi-format handle over one
//                 adjacency matrix (CSR now, transposes / B2SR packed
//                 forms materialize on first use or via prewarm());
//   * Context   — the execution descriptor each call carries: backend,
//                 kernel variant, thread budget, timer sink, RNG seed.
//                 No globals, no environment reads (Context::from_env()
//                 is opt-in sugar);
//   * Workspace — optional caller-owned scratch, for query loops that
//                 want zero steady-state allocations.
#include "algorithms/bfs.hpp"
#include "core/stats.hpp"
#include "graphblas/graph.hpp"
#include "platform/context.hpp"
#include "sparse/generators.hpp"

#include <cstdio>

int main() {
  using namespace bitgb;

  // 1. A graph: 64x64 grid road network (4096 vertices).
  const Coo edges = gen_road(64, 64, /*rewire=*/0.01, /*seed=*/42);

  // 2. Wrap it.  GraphOptions{} defers the B2SR tile-size choice to the
  //    sampling profiler (paper Algorithm 1), run at first use.
  const gb::Graph g = gb::Graph::from_coo(edges);
  std::printf("graph: %d vertices, %lld edges\n", g.num_vertices(),
              static_cast<long long>(g.num_edges()));

  // 3. An execution descriptor.  Context{} = bit backend, auto kernel
  //    variant, all hardware threads.  Everything is a plain field:
  //    Context{.backend = Backend::kReference, .threads = 1} pins a
  //    serial baseline run, and the fluent with_*() copies compose.
  const Context ctx;

  // 4. BFS from vertex 0.  The first bit-backend call triggers the
  //    lazy tile-dim sampling + B2SR packing; formats() shows what got
  //    materialized (a server would call g.prewarm(gb::kBitFormats)
  //    up front instead).
  const auto res = algo::bfs(ctx, g, {.source = 0});
  std::printf("auto-picked tile size %dx%d; formats mask after the run: "
              "0x%03x\n",
              g.tile_dim(), g.tile_dim(), g.formats());

  int reached = 0;
  int max_level = 0;
  for (const auto lvl : res.levels) {
    if (lvl != algo::kUnreached) {
      ++reached;
      max_level = std::max(max_level, static_cast<int>(lvl));
    }
  }
  std::printf("BFS from 0: reached %d/%d vertices in %d iterations "
              "(eccentricity %d)\n",
              reached, g.num_vertices(), res.iterations, max_level);

  // 5. A serving loop reuses a Workspace and a Result: after the first
  //    call, no allocations happen per query.
  algo::Workspace ws;
  algo::BfsResult out;
  for (vidx_t s = 0; s < 4; ++s) {
    algo::bfs(ctx, g, {.source = s}, ws, out);
    std::printf("  bfs(%d): %d iterations\n", s, out.iterations);
  }

  // 6. Storage: B2SR vs 32-bit float CSR (the paper's §VI-B metric).
  const auto fps = all_footprints(g.adjacency());
  std::printf("\n%-8s %14s %16s\n", "tile", "B2SR bytes", "vs float CSR");
  for (const auto& fp : fps) {
    std::printf("%2dx%-5d %14zu %15.1f%%\n", fp.dim, fp.dim, fp.b2sr_bytes,
                fp.compression_pct);
  }
  return 0;
}
