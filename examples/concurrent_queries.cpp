// Concurrent queries: N serving threads over ONE shared Graph, each
// query carrying its own Context — the execution model the
// Context/Descriptor API exists for.
//
//   $ ./concurrent_queries
//
// A production graph service shares one immutable, prewarmed Graph
// across all serving threads.  Each thread answers its queries with a
// per-thread Context (here: serial thread budget — the concurrency
// axis is the thread pool itself — and alternating kernel variants to
// show two in-flight queries can use different execution policies) and
// a per-thread Workspace (zero steady-state allocations).  The demo
// verifies every concurrent answer bit-for-bit against a serial pass,
// then shows the second serving gear the bit engine adds: draining the
// queue in 64-wide msbfs batches (one BMM frontier sweep per level for
// the whole batch).
#include "algorithms/bfs.hpp"
#include "algorithms/msbfs.hpp"
#include "graphblas/graph.hpp"
#include "platform/context.hpp"
#include "platform/parallel.hpp"
#include "platform/timer.hpp"
#include "sparse/generators.hpp"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <random>
#include <thread>
#include <vector>

int main() {
  using namespace bitgb;

  // The served graph, shared by every thread below.  prewarm() pays
  // the one-time packing/transpose conversions before serving starts,
  // so no query ever hits a cold format cache.
  const gb::Graph g = gb::Graph::from_coo(gen_rmat(12, 32768, 7));
  g.prewarm(gb::kBitFormats);
  std::printf("serving graph: %d vertices, %lld edges, tile %dx%d, "
              "formats 0x%03x\n\n",
              g.num_vertices(), static_cast<long long>(g.num_edges()),
              g.tile_dim(), g.tile_dim(), g.formats());

  // The request stream: 256 queries with random start vertices.
  constexpr int kQueries = 256;
  std::mt19937_64 rng(2024);
  std::uniform_int_distribution<vidx_t> pick(0, g.num_vertices() - 1);
  std::vector<vidx_t> queue(kQueries);
  for (auto& q : queue) q = pick(rng);

  // --- Serial reference pass (one Context, one thread) ---------------
  std::vector<int> expected_reached(kQueries);
  Stopwatch serial_watch;
  {
    const Context ctx = Context{}.with_threads(1);
    algo::Workspace ws;
    algo::BfsResult out;
    for (int q = 0; q < kQueries; ++q) {
      algo::bfs(ctx, g, {queue[static_cast<std::size_t>(q)]}, ws, out);
      int reached = 0;
      for (const auto lvl : out.levels) reached += (lvl != algo::kUnreached);
      expected_reached[static_cast<std::size_t>(q)] = reached;
    }
  }
  const double serial_ms = serial_watch.elapsed_ms();

  // --- Concurrent pass: N threads, per-thread Contexts ---------------
  const int nthreads = std::min(8, hardware_width());
  std::vector<int> got_reached(kQueries, -1);
  std::atomic<int> next_query{0};
  std::atomic<int> mismatches{0};
  Stopwatch conc_watch;
  {
    std::vector<std::thread> servers;
    servers.reserve(static_cast<std::size_t>(nthreads));
    for (int t = 0; t < nthreads; ++t) {
      servers.emplace_back([&, t] {
        // Per-thread descriptor: serial budget (the serving threads ARE
        // the parallelism) and a per-thread variant choice — two
        // queries in flight really do run different kernel paths.
        const Context ctx =
            Context{}
                .with_threads(1)
                .with_variant(t % 2 == 0 ? KernelVariant::kSimd
                                         : KernelVariant::kScalar);
        algo::Workspace ws;  // thread-owned: zero steady-state allocs
        algo::BfsResult out;
        for (;;) {
          const int q = next_query.fetch_add(1);
          if (q >= kQueries) break;
          algo::bfs(ctx, g, {queue[static_cast<std::size_t>(q)]}, ws, out);
          int reached = 0;
          for (const auto lvl : out.levels) {
            reached += (lvl != algo::kUnreached);
          }
          got_reached[static_cast<std::size_t>(q)] = reached;
          if (reached != expected_reached[static_cast<std::size_t>(q)]) {
            mismatches.fetch_add(1);
          }
        }
      });
    }
    for (auto& s : servers) s.join();
  }
  const double conc_ms = conc_watch.elapsed_ms();
  if (mismatches.load() != 0) {
    std::printf("MISMATCH: %d concurrent answers differ from serial\n",
                mismatches.load());
    return 1;
  }

  // --- Batched pass: drain the queue in 64-wide msbfs waves ----------
  Stopwatch batched_watch;
  long long batched_reached = 0;
  {
    const Context ctx;
    algo::Workspace ws;
    algo::MsBfsResult out;
    for (int q0 = 0; q0 < kQueries; q0 += FrontierBatch::kMaxBatch) {
      const auto q1 = std::min<int>(kQueries, q0 + FrontierBatch::kMaxBatch);
      const algo::MsBfsParams params{
          std::vector<vidx_t>(queue.begin() + q0, queue.begin() + q1)};
      algo::msbfs(ctx, g, params, ws, out);
      for (const auto lvl : out.levels) {
        batched_reached += (lvl != algo::kUnreached);
      }
    }
  }
  const double batched_ms = batched_watch.elapsed_ms();
  long long serial_total = 0;
  for (const int r : expected_reached) serial_total += r;
  if (batched_reached != serial_total) {
    std::printf("MISMATCH: batched reached %lld vs serial %lld\n",
                batched_reached, serial_total);
    return 1;
  }

  std::printf("%d queries, one shared Graph:\n", kQueries);
  std::printf("  1 thread, serial Contexts:      %8.2f ms (%6.0f q/s)\n",
              serial_ms, 1000.0 * kQueries / serial_ms);
  std::printf("  %d threads, per-query Contexts:  %8.2f ms (%6.0f q/s), "
              "%.1fx\n",
              nthreads, conc_ms, 1000.0 * kQueries / conc_ms,
              serial_ms / conc_ms);
  std::printf("  64-wide msbfs batches:          %8.2f ms (%6.0f q/s), "
              "%.1fx\n",
              batched_ms, 1000.0 * kQueries / batched_ms,
              serial_ms / batched_ms);
  std::printf("\nall %d concurrent answers verified against the serial "
              "pass\n", kQueries);
  return 0;
}
