// Concurrent queries, served: the serving::Server over ONE shared
// Graph — the query-serving core the Context/Descriptor API exists
// to make safe.
//
//   $ ./concurrent_queries
//
// A production graph service shares one immutable, prewarmed Graph
// across a pool of long-lived workers, each owning a Context +
// Workspace pair.  Clients submit() single-source queries and get
// futures; a bounded queue sheds on overload, and the auto-batcher
// coalesces backlogged same-kind queries into up-to-64-wide msbfs
// waves (one BMM frontier sweep per level for the whole wave).  The
// demo drives the same request stream through three gears — a serial
// reference pass, an unbatched server (max_batch = 1), and the
// auto-batching server — and verifies every served answer bit-for-bit
// against the serial pass.
//
// The second act is the multi-tenant form: a GraphRegistry of named
// graphs behind one Server, all four query kinds (BFS, reachability,
// PageRank, connected components), kBadGraph routing for unknown
// names, and a remove() racing in-flight queries — which drain safely,
// because every admitted request co-owns its graph snapshot.
#include "algorithms/bfs.hpp"
#include "graphblas/graph.hpp"
#include "platform/context.hpp"
#include "platform/parallel.hpp"
#include "platform/timer.hpp"
#include "serving/server.hpp"
#include "sparse/generators.hpp"

#include <algorithm>
#include <cstdio>
#include <future>
#include <random>
#include <vector>

int main() {
  using namespace bitgb;
  using serving::QueryKind;
  using serving::Reply;
  using serving::Server;
  using serving::ServerOptions;
  using serving::Status;

  // The served graph, shared by every worker below.  prewarm() pays
  // the one-time packing/transpose conversions before serving starts,
  // so no query ever hits a cold format cache.
  const gb::Graph g = gb::Graph::from_coo(gen_rmat(12, 32768, 7));
  g.prewarm(gb::kBitFormats);
  std::printf("serving graph: %d vertices, %lld edges, tile %dx%d, "
              "formats 0x%03x\n\n",
              g.num_vertices(), static_cast<long long>(g.num_edges()),
              g.tile_dim(), g.tile_dim(), g.formats());

  // The request stream: 256 queries with random start vertices.
  constexpr int kQueries = 256;
  std::mt19937_64 rng(2024);
  std::uniform_int_distribution<vidx_t> pick(0, g.num_vertices() - 1);
  std::vector<vidx_t> queue(kQueries);
  for (auto& q : queue) q = pick(rng);

  // --- Serial reference pass (one Context, one thread) ---------------
  std::vector<std::vector<std::int32_t>> expected(kQueries);
  Stopwatch serial_watch;
  {
    const Context ctx = Context{}.with_threads(1);
    algo::Workspace ws;
    algo::BfsResult out;
    for (int q = 0; q < kQueries; ++q) {
      algo::bfs(ctx, g, {queue[static_cast<std::size_t>(q)]}, ws, out);
      expected[static_cast<std::size_t>(q)] = out.levels;
    }
  }
  const double serial_ms = serial_watch.elapsed_ms();

  // One closed-loop burst through a Server: submit everything, then
  // collect.  Returns {elapsed_ms, mean wave width} and verifies every
  // reply against the serial pass.
  const int nworkers = std::min(8, hardware_width());
  auto run_server = [&](int max_batch, double* mean_wave) -> double {
    ServerOptions opts;
    opts.workers = nworkers;
    opts.queue_capacity = kQueries;  // burst fits: no shedding today
    opts.max_batch = max_batch;
    Server server(g, opts);

    std::vector<std::future<Reply>> futs;
    futs.reserve(kQueries);
    Stopwatch watch;
    for (int q = 0; q < kQueries; ++q) {
      futs.push_back(
          server.submit(QueryKind::kBfs, queue[static_cast<std::size_t>(q)]));
    }
    int mismatches = 0;
    for (int q = 0; q < kQueries; ++q) {
      const Reply r = futs[static_cast<std::size_t>(q)].get();
      if (r.status != Status::kOk ||
          r.levels != expected[static_cast<std::size_t>(q)]) {
        ++mismatches;
      }
    }
    const double ms = watch.elapsed_ms();
    server.shutdown();
    if (mismatches != 0) {
      std::printf("MISMATCH: %d served answers differ from serial\n",
                  mismatches);
      std::exit(1);
    }
    *mean_wave = server.stats().mean_wave_width();
    return ms;
  };

  // --- Unbatched server: the worker pool alone -----------------------
  double unbatched_wave = 0.0;
  const double unbatched_ms = run_server(1, &unbatched_wave);

  // --- Auto-batching server: backlog coalesces into msbfs waves ------
  double batched_wave = 0.0;
  const double batched_ms =
      run_server(FrontierBatch::kMaxBatch, &batched_wave);

  std::printf("%d queries, one shared Graph, %d serving workers:\n",
              kQueries, nworkers);
  std::printf("  serial loop (no server):    %8.2f ms (%6.0f q/s)\n",
              serial_ms, 1000.0 * kQueries / serial_ms);
  std::printf("  server, max_batch=1:        %8.2f ms (%6.0f q/s), %.1fx\n",
              unbatched_ms, 1000.0 * kQueries / unbatched_ms,
              serial_ms / unbatched_ms);
  std::printf("  server, 64-way auto-batch:  %8.2f ms (%6.0f q/s), %.1fx  "
              "(mean wave %.1f)\n",
              batched_ms, 1000.0 * kQueries / batched_ms,
              serial_ms / batched_ms, batched_wave);
  std::printf("\nall %d served answers verified against the serial pass\n",
              kQueries);

  // --- Multi-tenant: a registry of named graphs, all four kinds ------
  std::printf("\nmulti-tenant serving (GraphRegistry):\n");
  serving::GraphRegistry registry;
  registry.add("social", gb::Graph::from_coo(gen_rmat(11, 16384, 21)));
  registry.add("roads", gb::Graph::from_coo(gen_road(48, 48, 0.02, 23)));
  {
    ServerOptions opts;
    opts.workers = nworkers;
    Server server(registry, opts);

    // One of each kind, routed by name.  PageRank params travel in the
    // request; components is memoized per registration, so the second
    // query is a read.
    auto bfs_fut = server.submit("social", QueryKind::kBfs, 0);
    auto reach_fut = server.submit("social", QueryKind::kReach, 0);
    algo::PageRankParams pr;
    pr.max_iterations = 20;
    auto pr_fut = server.submit_pagerank("social", pr);
    auto cc_cold = server.submit("roads", QueryKind::kComponents);
    auto cc_warm = server.submit("roads", QueryKind::kComponents);

    // An unknown name is an answer, not an exception: the future
    // resolves immediately with kBadGraph.
    auto ghost = server.submit("ghost", QueryKind::kBfs, 0);

    // remove() while queries may still be in flight: the registration
    // is gone, but admitted queries co-own the slot and drain.
    registry.remove("roads");
    auto after_remove = server.submit("roads", QueryKind::kComponents);

    const Reply bfs_r = bfs_fut.get();
    const Reply reach_r = reach_fut.get();
    const Reply pr_r = pr_fut.get();
    const Reply cc1 = cc_cold.get();
    const Reply cc2 = cc_warm.get();
    std::printf("  social/bfs:        %s, %zu levels\n",
                serving::status_name(bfs_r.status), bfs_r.levels.size());
    std::printf("  social/reach:      %s, %zu flags\n",
                serving::status_name(reach_r.status), reach_r.reached.size());
    std::printf("  social/pagerank:   %s, %d iterations\n",
                serving::status_name(pr_r.status), pr_r.iterations);
    std::printf("  roads/components:  %s, %zu labels (%d waves; second "
                "read memoized: %s)\n",
                serving::status_name(cc1.status), cc1.component.size(),
                cc1.iterations,
                cc1.component == cc2.component ? "identical" : "BUG");
    std::printf("  ghost/bfs:         %s\n",
                serving::status_name(ghost.get().status));
    std::printf("  roads after remove(): %s (in-flight queries drained "
                "safely)\n",
                serving::status_name(after_remove.get().status));
  }
  return 0;
}
