// Concurrent queries: serving a stream of traversal requests in
// 64-wide batches.
//
//   $ ./concurrent_queries
//
// A query-serving loop in the shape production graph services run:
// clients submit "how far is every vertex from my start point?"
// requests; the server drains the queue in batches of up to 64, answers
// each batch with ONE batched msbfs (a single BMM frontier sweep per
// level instead of one BMV sweep per query per level), and reports the
// throughput against serving the same stream one query at a time.
#include "algorithms/bfs.hpp"
#include "algorithms/msbfs.hpp"
#include "graphblas/graph.hpp"
#include "platform/timer.hpp"
#include "sparse/generators.hpp"

#include <algorithm>
#include <cstdio>
#include <random>
#include <vector>

int main() {
  using namespace bitgb;

  // The served graph: a scale-free social-network analog.
  const gb::Graph g = gb::Graph::from_coo(gen_rmat(12, 32768, 7));
  (void)g.packed_t();  // warm the one-time conversion before serving
  std::printf("serving graph: %d vertices, %lld edges, tile %dx%d\n\n",
              g.num_vertices(), static_cast<long long>(g.num_edges()),
              g.tile_dim(), g.tile_dim());

  // The request stream: 256 queries with random start vertices.
  constexpr int kQueries = 256;
  std::mt19937_64 rng(2024);
  std::uniform_int_distribution<vidx_t> pick(0, g.num_vertices() - 1);
  std::vector<vidx_t> queue(kQueries);
  for (auto& q : queue) q = pick(rng);

  // Serve in batches of up to 64: one msbfs per batch.
  Stopwatch batched_watch;
  eidx_t reached = 0;
  int batches = 0;
  for (int q0 = 0; q0 < kQueries;
       q0 += FrontierBatch::kMaxBatch) {
    const auto q1 =
        std::min<int>(kQueries, q0 + FrontierBatch::kMaxBatch);
    const std::vector<vidx_t> batch(queue.begin() + q0, queue.begin() + q1);
    const auto res = algo::msbfs(g, batch, gb::Backend::kBit);
    ++batches;
    for (const auto lvl : res.levels) {
      if (lvl != algo::kUnreached) ++reached;
    }
  }
  const double batched_ms = batched_watch.elapsed_ms();

  // The same stream served one query at a time (what a single-source
  // engine would do).
  Stopwatch serial_watch;
  eidx_t serial_reached = 0;
  for (const vidx_t q : queue) {
    const auto res = algo::bfs(g, q, gb::Backend::kBit);
    for (const auto lvl : res.levels) {
      if (lvl != algo::kUnreached) ++serial_reached;
    }
  }
  const double serial_ms = serial_watch.elapsed_ms();

  if (reached != serial_reached) {
    std::printf("MISMATCH: batched reached %lld vs serial %lld\n",
                static_cast<long long>(reached),
                static_cast<long long>(serial_reached));
    return 1;
  }

  std::printf("%d queries in %d batches: %.2f ms batched "
              "(%.0f queries/s)\n",
              kQueries, batches, batched_ms, 1000.0 * kQueries / batched_ms);
  std::printf("%d queries one at a time:  %.2f ms serial "
              "(%.0f queries/s)\n",
              kQueries, serial_ms, 1000.0 * kQueries / serial_ms);
  std::printf("\nbatching speedup: %.1fx  (%lld (vertex, query) "
              "reachability answers)\n",
              serial_ms / batched_ms, static_cast<long long>(reached));
  return 0;
}
